package core

import "perfstacks/internal/invariant"

// This file holds the simdebug runtime checks for the accountants. Every
// entry point is reached only through an `if invariant.Enabled` guard, so in
// a normal build (invariant.Enabled == false) none of this code runs and the
// guards compile away entirely.
//
// Two kinds of checks are wired in:
//
//   - per-sample well-formedness, validating the pipeline→accountant contract
//     on every CycleSample (non-negative counts; batched Repeat samples carry
//     no throughput or events);
//   - periodic conservation, re-proving Σ components = cycles for every
//     stack — including the speculative scheme's in-flight buffers — every
//     debugCheckInterval cycles and again at Finalize.

// debugCheckInterval is the conservation-check cadence in cycles.
const debugCheckInterval = 8192

// debugTick schedules periodic checks by cycle count. Batched idle windows
// can jump the cycle counter past any fixed modulus, so a moving threshold
// is used instead of `cycles % interval`.
type debugTick struct{ next int64 }

// due reports whether a periodic check should run at the given cycle count
// and, if so, schedules the next one.
func (d *debugTick) due(cycles int64) bool {
	if cycles < d.next {
		return false
	}
	d.next = cycles + debugCheckInterval
	return true
}

// sumFloats totals a component slice.
func sumFloats(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

// debugCheckSample validates the pipeline→accountant sample contract.
func debugCheckSample(s *CycleSample) {
	invariant.Assertf(s.Repeat >= 0, "CycleSample.Repeat = %d at cycle %d", s.Repeat, s.Cycle)
	invariant.Assertf(s.FetchN >= 0 && s.DispatchN >= 0 && s.DispatchWrongN >= 0 &&
		s.IssueN >= 0 && s.IssueWrongN >= 0 && s.CommitN >= 0,
		"negative throughput count in sample at cycle %d", s.Cycle)
	invariant.Assertf(s.VFPIssued >= 0 && s.VFPActiveLanes >= 0 && s.VFPFlops >= 0 && s.VUNonVFP >= 0,
		"negative VFP count in sample at cycle %d", s.Cycle)
	if s.Repeat > 1 {
		// A batched sample stands for Repeat provably idle cycles: the
		// accountants multiply one cycle's weights by Repeat, which is only
		// sound when nothing moved and no events fired (see CycleSample.Repeat).
		invariant.Assertf(s.FetchN == 0 && s.DispatchN == 0 && s.DispatchWrongN == 0 &&
			s.IssueN == 0 && s.IssueWrongN == 0 && s.CommitN == 0 &&
			s.VFPIssued == 0 && s.VFPActiveLanes == 0 && s.VFPFlops == 0,
			"batched sample (Repeat=%d) at cycle %d has nonzero throughput", s.Repeat, s.Cycle)
		invariant.Assertf(!s.HasCommit && !s.HasSquash,
			"batched sample (Repeat=%d) at cycle %d carries commit/squash events", s.Repeat, s.Cycle)
	}
}

// stageWidth returns the normalization width in effect for st.
func (m *MultiStageAccountant) stageWidth(st Stage) float64 {
	if m.opts.UseStageWidths {
		return float64(m.opts.StageWidths[st])
	}
	return float64(m.opts.Width)
}

// debugConserve re-proves conservation for all three stage stacks. Under the
// speculative scheme the dispatch/issue increments live in the per-uop
// buffers until commit/squash/flush, so the in-flight totals are added back
// in: Σ stage.comp + Σ committed + Σ pending = cycles at every instant.
func (m *MultiStageAccountant) debugConserve() {
	cyc := float64(m.cycles)
	for st := Stage(0); st < NumStages; st++ {
		a := &m.stages[st]
		for c := Component(0); c < NumComponents; c++ {
			invariant.NonNegative(a.comp[c], "cpi "+st.String()+" component "+c.String())
		}
		sum := sumFloats(a.comp[:])
		if m.spec != nil {
			sum += m.spec.debugStageTotal(st)
		}
		invariant.Conserved(sum, cyc, "cpi "+st.String()+" stack")
		invariant.NonNegative(a.carry, "cpi "+st.String()+" carry")
		// When every observed n fits the stage width the carry is bounded by
		// the width; a wider upstream stage (n > w under min-width
		// normalization) legitimately accumulates more.
		if w := m.stageWidth(st); a.dbgMaxN <= w {
			invariant.AtMost(a.carry, w, "cpi "+st.String()+" carry (all n <= width)")
		}
	}
}

// debugStageTotal sums the speculative buffers' increments for one stage:
// everything folded at commit/squash but not yet flushed, plus everything
// still attributed to in-flight uops.
func (sp *specState) debugStageTotal(st Stage) float64 {
	t := sumFloats(sp.committed[st][:])
	for i := range sp.pending {
		t += sumFloats(sp.pending[i].comp[st][:])
	}
	return t
}

// debugConserve re-proves conservation for the fetch-stage stack.
func (a *FetchAccountant) debugConserve() {
	invariant.Conserved(sumFloats(a.acct.comp[:]), float64(a.cycles), "fetch stack")
	invariant.NonNegative(a.acct.carry, "fetch carry")
	if a.acct.dbgMaxN <= a.width {
		invariant.AtMost(a.acct.carry, a.width, "fetch carry (all n <= width)")
	}
}

// debugCheckVFP validates the Table III preconditions that make the per-cycle
// FLOPS decomposition sum to exactly 1: at most k uops issue, each uop uses
// at most v lanes, and each lane performs at most 2 operations (an FMA).
func (a *FLOPSAccountant) debugCheckVFP(s *CycleSample) {
	invariant.Assertf(s.VFPIssued <= a.k,
		"VFPIssued = %d exceeds k = %d at cycle %d", s.VFPIssued, a.k, s.Cycle)
	invariant.Assertf(s.VFPActiveLanes <= s.VFPIssued*a.v,
		"VFPActiveLanes = %d exceeds n*v = %d at cycle %d", s.VFPActiveLanes, s.VFPIssued*a.v, s.Cycle)
	invariant.Assertf(s.VFPFlops <= 2*s.VFPActiveLanes,
		"VFPFlops = %d exceeds 2*lanes = %d at cycle %d", s.VFPFlops, 2*s.VFPActiveLanes, s.Cycle)
}

// debugConserve re-proves conservation for the FLOPS stack.
func (a *FLOPSAccountant) debugConserve() {
	for c := FLOPSComponent(0); c < NumFLOPSComponents; c++ {
		invariant.NonNegative(a.stack.Comp[c], "FLOPS component "+c.String())
	}
	invariant.Conserved(a.stack.Sum(), float64(a.stack.Cycles), "FLOPS stack")
}

// debugConserve checks the memory-depth sub-stacks: they decompose only the
// D-cache share of the stall cycles, so each side is bounded by (not equal
// to) the cycle count.
func (a *MemDepthAccountant) debugConserve() {
	cyc := float64(a.stack.Cycles)
	for l := MemLevel(0); l < NumMemLevels; l++ {
		invariant.NonNegative(a.stack.Commit[l], "memdepth commit "+l.String())
		invariant.NonNegative(a.stack.Issue[l], "memdepth issue "+l.String())
	}
	invariant.AtMost(a.stack.CommitTotal(), cyc, "memdepth commit total")
	invariant.AtMost(a.stack.IssueTotal(), cyc, "memdepth issue total")
	invariant.NonNegative(a.commitCarry, "memdepth commit carry")
	invariant.NonNegative(a.issueCarry, "memdepth issue carry")
}

// debugConserve checks the structural sub-stack: it decomposes only the
// ready-but-blocked share of the issue stalls.
func (a *StructuralAccountant) debugConserve() {
	cyc := float64(a.stack.Cycles)
	for c := StructuralCause(0); c < NumStructuralCauses; c++ {
		invariant.NonNegative(a.stack.Cause[c], "structural "+c.String())
	}
	invariant.AtMost(a.stack.Total(), cyc, "structural total")
	invariant.NonNegative(a.carry, "structural carry")
}
