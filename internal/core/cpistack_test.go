package core

import (
	"math"
	"testing"
	"testing/quick"
)

// feed drives an accountant with identical samples for n cycles.
func feed(a *MultiStageAccountant, s CycleSample, n int) {
	for i := 0; i < n; i++ {
		a.Cycle(&s)
	}
}

func newAcct(w int) *MultiStageAccountant {
	return NewMultiStageAccountant(Options{Width: w})
}

func TestFullWidthCyclesAreAllBase(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{DispatchN: 4, IssueN: 4, CommitN: 4}, 100)
	ms := a.Finalize(0)
	for _, st := range Stages() {
		s := ms.Stack(st)
		if s.Comp[CompBase] != 100 {
			t.Errorf("%s base = %v, want 100", st, s.Comp[CompBase])
		}
		if s.Sum() != 100 {
			t.Errorf("%s sum = %v, want 100", st, s.Sum())
		}
	}
}

func TestBaseComponentEqualAcrossStages(t *testing.T) {
	// Uneven per-cycle rates but equal totals: base components must match
	// across stages ("the base component for all stacks is the same").
	a := newAcct(2)
	a.Cycle(&CycleSample{DispatchN: 2, IssueN: 0, CommitN: 0,
		RSEmpty: true, ROBEmpty: true, FECause: FEICache})
	a.Cycle(&CycleSample{DispatchN: 2, IssueN: 2, CommitN: 1,
		FEEmpty: true, FECause: FEICache, ROBHeadNotDone: true, ROBHeadClass: ProdDepend})
	a.Cycle(&CycleSample{DispatchN: 0, IssueN: 2, CommitN: 3,
		FEEmpty: true, FECause: FEICache})
	// Drain the commit-stage width carryover (3 committed in one 2-wide
	// cycle) so the totals are comparable.
	a.Cycle(&CycleSample{DispatchN: 0, IssueN: 0, CommitN: 0,
		FEEmpty: true, FECause: FEICache, RSEmpty: true, ROBEmpty: true})
	ms := a.Finalize(0)
	base := ms.Stack(StageDispatch).Comp[CompBase]
	for _, st := range Stages() {
		if got := ms.Stack(st).Comp[CompBase]; math.Abs(got-base) > 1e-12 {
			t.Errorf("%s base = %v, want %v", st, got, base)
		}
	}
}

func TestDispatchFrontendCauseAttribution(t *testing.T) {
	cases := []struct {
		cause FECause
		comp  Component
	}{
		{FEICache, CompICache},
		{FEBpred, CompBpred},
		{FEMicrocode, CompMicrocode},
		{FEUnsched, CompUnsched},
		{FEDrained, CompOther},
	}
	for _, c := range cases {
		a := newAcct(4)
		feed(a, CycleSample{DispatchN: 0, FEEmpty: true, FECause: c.cause,
			RSEmpty: true, ROBEmpty: true}, 10)
		ms := a.Finalize(0)
		if got := ms.Stack(StageDispatch).Comp[c.comp]; got != 10 {
			t.Errorf("cause %v: dispatch %v = %v, want 10", c.cause, c.comp, got)
		}
	}
}

func TestDispatchROBFullBlamesHead(t *testing.T) {
	cases := []struct {
		cls  ProdClass
		comp Component
	}{
		{ProdDCache, CompDCache},
		{ProdLongLat, CompALULat},
		{ProdDepend, CompDepend},
	}
	for _, c := range cases {
		a := newAcct(4)
		feed(a, CycleSample{DispatchN: 0, ROBFull: true, ROBHeadClass: c.cls,
			IssueN: 4, CommitN: 4}, 10)
		ms := a.Finalize(0)
		if got := ms.Stack(StageDispatch).Comp[c.comp]; got != 10 {
			t.Errorf("head %v: dispatch %v = %v, want 10", c.cls, c.comp, got)
		}
	}
}

func TestDispatchPartialDeliveryChargedToFrontend(t *testing.T) {
	// 2 of 4 dispatched, queue then empty on an I-cache miss: half the
	// cycle is base, half I-cache.
	a := newAcct(4)
	feed(a, CycleSample{DispatchN: 2, FEEmpty: true, FECause: FEICache,
		IssueN: 2, CommitN: 2, RSEmpty: true, ROBEmpty: true}, 10)
	ms := a.Finalize(0)
	d := ms.Stack(StageDispatch)
	if d.Comp[CompBase] != 5 || d.Comp[CompICache] != 5 {
		t.Fatalf("partial delivery: base %v icache %v, want 5/5", d.Comp[CompBase], d.Comp[CompICache])
	}
}

func TestIssueFirstNonReadyClassification(t *testing.T) {
	cases := []struct {
		cls  ProdClass
		comp Component
	}{
		{ProdDCache, CompDCache},
		{ProdLongLat, CompALULat},
		{ProdDepend, CompDepend},
	}
	for _, c := range cases {
		a := newAcct(4)
		feed(a, CycleSample{DispatchN: 4, IssueN: 0, CommitN: 4,
			FirstNonReadyClass: c.cls}, 10)
		ms := a.Finalize(0)
		if got := ms.Stack(StageIssue).Comp[c.comp]; got != 10 {
			t.Errorf("producer %v: issue %v = %v, want 10", c.cls, c.comp, got)
		}
	}
}

func TestIssueStructuralStallIsOther(t *testing.T) {
	// RS has ready uops (FirstNonReadyClass == ProdNone) but ports blocked.
	a := newAcct(4)
	feed(a, CycleSample{DispatchN: 4, IssueN: 1, CommitN: 4,
		FirstNonReadyClass: ProdNone}, 8)
	ms := a.Finalize(0)
	if got := ms.Stack(StageIssue).Comp[CompOther]; got != 6 {
		t.Fatalf("structural issue stall = %v, want 6 (8 cycles x 0.75)", got)
	}
}

func TestIssueRSEmptyUsesFrontendCause(t *testing.T) {
	a := newAcct(2)
	feed(a, CycleSample{DispatchN: 2, IssueN: 0, CommitN: 2,
		RSEmpty: true, FECause: FEMicrocode}, 10)
	ms := a.Finalize(0)
	if got := ms.Stack(StageIssue).Comp[CompMicrocode]; got != 10 {
		t.Fatalf("issue microcode = %v, want 10", got)
	}
}

func TestIssueRSEmptyQuietFrontendBlamesROBHead(t *testing.T) {
	// Everything in flight issued; ROB draining a D-cache miss.
	a := newAcct(2)
	feed(a, CycleSample{IssueN: 0, RSEmpty: true, FECause: FENone,
		ROBEmpty: false, ROBHeadClass: ProdDCache, ROBHeadNotDone: true}, 5)
	ms := a.Finalize(0)
	if got := ms.Stack(StageIssue).Comp[CompDCache]; got != 5 {
		t.Fatalf("issue dcache = %v, want 5", got)
	}
}

func TestCommitROBEmptyUsesFrontendCause(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{CommitN: 0, ROBEmpty: true, FECause: FEBpred}, 7)
	ms := a.Finalize(0)
	if got := ms.Stack(StageCommit).Comp[CompBpred]; got != 7 {
		t.Fatalf("commit bpred = %v, want 7", got)
	}
}

func TestCommitHeadNotDoneBlamesHead(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{CommitN: 1, ROBHeadNotDone: true, ROBHeadClass: ProdLongLat}, 8)
	ms := a.Finalize(0)
	c := ms.Stack(StageCommit)
	if got := c.Comp[CompALULat]; got != 6 {
		t.Fatalf("commit ALU = %v, want 6", got)
	}
	if got := c.Comp[CompBase]; got != 2 {
		t.Fatalf("commit base = %v, want 2", got)
	}
}

func TestCommitBandwidthExhaustedIsOther(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{CommitN: 2, ROBHeadNotDone: false}, 4)
	ms := a.Finalize(0)
	if got := ms.Stack(StageCommit).Comp[CompOther]; got != 2 {
		t.Fatalf("commit other = %v, want 2", got)
	}
}

func TestUnschedDominatesAllStages(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{Unsched: true, FEEmpty: true, FECause: FEUnsched,
		RSEmpty: true, ROBEmpty: true}, 12)
	ms := a.Finalize(0)
	for _, st := range Stages() {
		if got := ms.Stack(st).Comp[CompUnsched]; got != 12 {
			t.Errorf("%s unsched = %v, want 12", st, got)
		}
	}
}

func TestWidthCarryover(t *testing.T) {
	// Issue 6-wide against W=4: f caps at 1, surplus carries. Alternating
	// 6 and 2 issued sums to 8 per 2 cycles = full width: no stall.
	a := newAcct(4)
	for i := 0; i < 10; i++ {
		n := 6
		if i%2 == 1 {
			n = 2
		}
		a.Cycle(&CycleSample{DispatchN: 4, IssueN: n, CommitN: 4})
	}
	ms := a.Finalize(0)
	is := ms.Stack(StageIssue)
	if got := is.Comp[CompBase]; got != 10 {
		t.Fatalf("issue base with carryover = %v, want 10", got)
	}
}

func TestCarryoverDoesNotLeakAcrossStall(t *testing.T) {
	// A wide burst followed by an empty cycle: the carry fills the next
	// cycle's base, and the remainder of that cycle is classified.
	a := newAcct(4)
	a.Cycle(&CycleSample{DispatchN: 4, IssueN: 6, CommitN: 4})
	a.Cycle(&CycleSample{DispatchN: 4, IssueN: 0, CommitN: 4, FirstNonReadyClass: ProdDepend})
	ms := a.Finalize(0)
	is := ms.Stack(StageIssue)
	if got := is.Comp[CompBase]; got != 1.5 {
		t.Fatalf("issue base = %v, want 1.5 (1 + 2/4)", got)
	}
	if got := is.Comp[CompDepend]; got != 0.5 {
		t.Fatalf("issue depend = %v, want 0.5", got)
	}
}

func TestOracleWrongPathChargesBpred(t *testing.T) {
	a := newAcct(4)
	// Wrong-path uops dispatching, frontend claims non-empty.
	feed(a, CycleSample{DispatchN: 0, DispatchWrongN: 4, WrongPath: true,
		IssueN: 0, IssueWrongN: 4, CommitN: 0, ROBEmpty: true, FECause: FEBpred,
		RSEmpty: false}, 10)
	ms := a.Finalize(0)
	if got := ms.Stack(StageDispatch).Comp[CompBpred]; got != 10 {
		t.Fatalf("oracle dispatch bpred = %v, want 10", got)
	}
	if got := ms.Stack(StageIssue).Comp[CompBpred]; got != 10 {
		t.Fatalf("oracle issue bpred = %v, want 10", got)
	}
	// Base stays zero: wrong-path uops are excluded.
	if got := ms.Stack(StageDispatch).Comp[CompBase]; got != 0 {
		t.Fatalf("oracle dispatch base = %v, want 0", got)
	}
}

func TestSimpleSchemeTransfersBaseSurplus(t *testing.T) {
	a := NewMultiStageAccountant(Options{Width: 4, Scheme: WrongPathSimple})
	// 5 cycles full-width correct path at all stages.
	feed(a, CycleSample{DispatchN: 4, IssueN: 4, CommitN: 4}, 5)
	// 5 cycles wrong-path dispatch/issue, no commits.
	feed(a, CycleSample{DispatchWrongN: 4, IssueWrongN: 4, CommitN: 0,
		ROBEmpty: true, FECause: FEBpred}, 5)
	ms := a.Finalize(0)
	d := ms.Stack(StageDispatch)
	// The simple scheme counted 10 base cycles at dispatch but only 5 at
	// commit; the surplus 5 must move to Bpred.
	if got := d.Comp[CompBase]; got != 5 {
		t.Fatalf("simple dispatch base = %v, want 5", got)
	}
	if got := d.Comp[CompBpred]; got != 5 {
		t.Fatalf("simple dispatch bpred = %v, want 5", got)
	}
	if got := ms.Stack(StageCommit).Comp[CompBase]; got != 5 {
		t.Fatalf("commit base = %v, want 5", got)
	}
}

func TestSpeculativeSchemeFoldsSquashToBpred(t *testing.T) {
	a := NewMultiStageAccountant(Options{Width: 4, Scheme: WrongPathSpeculative})
	// Correct-path cycle that commits.
	a.Cycle(&CycleSample{DispatchN: 4, IssueN: 4, CommitN: 4,
		DispatchYoungest: 3, IssueYoungest: 3, HasCommit: true, CommitThrough: 3})
	// Wrong-path work, later squashed.
	wp := uint64(1) << 63
	feed(a, CycleSample{DispatchWrongN: 4, IssueWrongN: 4, WrongPath: true,
		DispatchYoungest: wp | 7, IssueYoungest: wp | 7, ROBEmpty: true, FECause: FEBpred}, 3)
	a.Cycle(&CycleSample{HasSquash: true, SquashAfter: 3, ROBEmpty: true,
		FEEmpty: true, FECause: FEBpred, RSEmpty: true})
	ms := a.Finalize(0)
	d := ms.Stack(StageDispatch)
	// 3 wrong-path cycles' base (3.0) go to Bpred, plus the stall cycle.
	if got := d.Comp[CompBase]; got != 1 {
		t.Fatalf("speculative dispatch base = %v, want 1", got)
	}
	if got := d.Comp[CompBpred]; got != 4 {
		t.Fatalf("speculative dispatch bpred = %v, want 4", got)
	}
}

func TestSpeculativeCommitFoldsToOriginalComponents(t *testing.T) {
	a := NewMultiStageAccountant(Options{Width: 4, Scheme: WrongPathSpeculative})
	// Stall attributed to uop 5, which later commits: the I-cache
	// attribution must survive.
	a.Cycle(&CycleSample{DispatchN: 1, DispatchYoungest: 5, FEEmpty: true,
		FECause: FEICache, IssueN: 1, IssueYoungest: 5, RSEmpty: true, CommitN: 0, ROBEmpty: true})
	a.Cycle(&CycleSample{DispatchN: 4, DispatchYoungest: 9, IssueN: 4,
		IssueYoungest: 9, CommitN: 4, HasCommit: true, CommitThrough: 9})
	ms := a.Finalize(0)
	d := ms.Stack(StageDispatch)
	if got := d.Comp[CompICache]; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("speculative dispatch icache = %v, want 0.75", got)
	}
}

// Property: for any random sample stream, every stage's components sum to
// the cycle count under every scheme.
func TestStackSumInvariantProperty(t *testing.T) {
	f := func(raw []uint8, schemeSel uint8) bool {
		scheme := WrongPathScheme(schemeSel % 3)
		a := NewMultiStageAccountant(Options{Width: 4, Scheme: scheme})
		seq := uint64(0)
		for _, r := range raw {
			s := CycleSample{
				DispatchN: int(r % 5),
				IssueN:    int((r >> 2) % 5),
				CommitN:   int((r >> 4) % 5),
			}
			seq += uint64(s.DispatchN)
			s.DispatchYoungest = seq
			s.IssueYoungest = seq
			if s.CommitN > 0 {
				s.HasCommit = true
				s.CommitThrough = seq
			}
			if s.DispatchN == 0 {
				s.FEEmpty = true
				s.FECause = FECause(r % 5)
			}
			if s.IssueN == 0 {
				s.FirstNonReadyClass = ProdClass(r % 4)
			}
			if s.CommitN == 0 {
				s.ROBEmpty = r%2 == 0
				s.ROBHeadNotDone = !s.ROBEmpty
				s.ROBHeadClass = ProdClass((r >> 1) % 4)
			}
			a.Cycle(&s)
		}
		ms := a.Finalize(0)
		for _, st := range Stages() {
			sum := ms.Stack(st).Sum()
			if math.Abs(sum-float64(len(raw))) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: components are never negative.
func TestComponentsNonNegativeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		a := newAcct(2)
		for _, r := range raw {
			s := CycleSample{
				DispatchN: int(r % 3),
				IssueN:    int((r >> 2) % 3),
				CommitN:   int((r >> 4) % 3),
				FEEmpty:   r%2 == 0,
				FECause:   FECause(r % 6),
			}
			a.Cycle(&s)
		}
		ms := a.Finalize(0)
		for _, st := range Stages() {
			for c := Component(0); c < NumComponents; c++ {
				if ms.Stack(st).Comp[c] < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFinalizeInstructionOverride(t *testing.T) {
	a := newAcct(4)
	feed(a, CycleSample{DispatchN: 4, IssueN: 4, CommitN: 4}, 10)
	ms := a.Finalize(80)
	if ms.Stack(StageDispatch).Instructions != 80 {
		t.Fatal("explicit instruction count should be used")
	}
	ms2 := NewMultiStageAccountant(Options{Width: 4})
	feed(ms2, CycleSample{DispatchN: 4, IssueN: 4, CommitN: 4}, 10)
	if got := ms2.Finalize(0).Stack(StageDispatch).Instructions; got != 40 {
		t.Fatalf("internal instruction count = %d, want 40", got)
	}
}

func TestSchemeString(t *testing.T) {
	if WrongPathOracle.String() != "oracle" || WrongPathSimple.String() != "simple" ||
		WrongPathSpeculative.String() != "speculative" {
		t.Fatal("scheme names wrong")
	}
}
