package core

import "perfstacks/internal/invariant"

// FetchAccountant measures a CPI stack at the fetch/decode stage — the
// paper notes "similar accounting can be done at other stages (e.g., fetch
// and decode)" (§III-A). The classification mirrors the dispatch column of
// Table II one stage earlier: when fetch delivers fewer than W uops, the
// cause is either the fetch unit itself (I-cache miss, branch redirect,
// microcode occupancy) or back-pressure from a full decode queue, which is
// blamed on the downstream state exactly like a full ROB/RS at dispatch.
//
// The fetch stack extends the multi-stage bracket upward: its frontend
// components are at least as large as the dispatch stack's, so for frontend
// events the bound ordering is fetch >= dispatch >= issue >= commit.
type FetchAccountant struct {
	acct   stageAcct
	width  float64
	cycles int64
	insts  uint64
	dbg    debugTick
}

// NewFetchAccountant builds an accountant for normalization width w.
func NewFetchAccountant(w int) *FetchAccountant {
	if w < 1 {
		w = 1
	}
	return &FetchAccountant{width: float64(w)}
}

// Cycle consumes one sample.
//
//simlint:hotpath
func (a *FetchAccountant) Cycle(s *CycleSample) {
	if invariant.Enabled {
		debugCheckSample(s)
		if a.dbg.due(a.cycles) {
			a.debugConserve()
		}
	}
	if s.Repeat > 1 {
		// Idle window: zero fetch throughput with a constant stall cause.
		a.cycles += s.Repeat
		a.acct.idle(a.classify(s), a.width, s.Repeat)
		return
	}
	a.cycles++
	a.insts += uint64(s.CommitN)
	stall := a.acct.cycle(float64(s.FetchN), a.width)
	if stall <= 0 {
		return
	}
	a.acct.comp[a.classify(s)] += stall
}

func (a *FetchAccountant) classify(s *CycleSample) Component {
	if s.Unsched {
		return CompUnsched
	}
	if s.WrongPath {
		return CompBpred
	}
	if s.FetchQueueFull {
		// Back-pressure: the decode queue is full because dispatch is not
		// draining it; blame the downstream blockage like dispatch does.
		if s.ROBFull || s.RSFull {
			return s.ROBHeadClass.Component()
		}
		return CompOther
	}
	if s.FetchCause != FENone {
		return s.FetchCause.Component()
	}
	return CompOther
}

// Finalize returns the fetch-stage stack.
func (a *FetchAccountant) Finalize() Stack {
	if invariant.Enabled {
		a.debugConserve()
	}
	return Stack{
		Stage:        StageFetch,
		Width:        int(a.width),
		Comp:         a.acct.comp,
		Cycles:       a.cycles,
		Instructions: a.insts,
	}
}
