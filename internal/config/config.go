// Package config assembles full machine configurations — core pipeline,
// branch predictor, cache hierarchy and memory — for the three processors
// the paper evaluates on: an Intel Broadwell-inspired core (BDW, 4-wide
// out-of-order, 18-core socket), an Intel Knights Landing-inspired core
// (KNL, 2-wide out-of-order, 68-core socket, AVX-512) and an Intel
// Skylake-SP-inspired core (SKX, 4-wide, 26-core socket, AVX-512).
//
// Following the paper's methodology, all uncore components (shared cache
// capacity and memory bandwidth) are scaled down by the socket core count to
// mimic a fully loaded processor.
package config

import (
	"fmt"

	"perfstacks/internal/bpred"
	"perfstacks/internal/cache"
	"perfstacks/internal/cpu"
	"perfstacks/internal/mem"
)

// Machine is a complete single-core machine configuration.
type Machine struct {
	// Name identifies the configuration ("BDW", "KNL", "SKX").
	Name string
	// Core is the pipeline configuration.
	Core cpu.Params
	// Bpred sizes the branch predictor.
	Bpred bpred.Config
	// Hierarchy is the cache/memory configuration (uncore pre-scaled).
	Hierarchy cache.HierarchyConfig
	// SocketCores is the core count used for uncore scaling.
	SocketCores int
	// FreqGHz is the core clock, used to express FLOPS stacks in ops/s.
	FreqGHz float64
}

// Idealize holds the paper's idealization switches (§IV): perfect L1 caches,
// perfect branch prediction and single-cycle arithmetic.
type Idealize struct {
	PerfectICache  bool
	PerfectDCache  bool
	PerfectBpred   bool
	SingleCycleALU bool
}

// None returns no idealizations (the "all real" configuration).
func None() Idealize { return Idealize{} }

// String names the idealization combination, e.g. "perfect-bpred+dcache".
func (id Idealize) String() string {
	s := ""
	add := func(name string, on bool) {
		if !on {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	add("icache", id.PerfectICache)
	add("dcache", id.PerfectDCache)
	add("bpred", id.PerfectBpred)
	add("alu1", id.SingleCycleALU)
	if s == "" {
		return "real"
	}
	return "perfect-" + s
}

// Apply returns a copy of the machine with the idealizations switched on.
func (m Machine) Apply(id Idealize) Machine {
	m.Core.PerfectBpred = m.Core.PerfectBpred || id.PerfectBpred
	m.Core.SingleCycleALU = m.Core.SingleCycleALU || id.SingleCycleALU
	m.Hierarchy.PerfectL1I = m.Hierarchy.PerfectL1I || id.PerfectICache
	m.Hierarchy.PerfectL1D = m.Hierarchy.PerfectL1D || id.PerfectDCache
	return m
}

// Validate checks the assembled configuration.
func (m Machine) Validate() error {
	if err := m.Core.Validate(); err != nil {
		return err
	}
	for _, c := range []cache.Config{m.Hierarchy.L1I, m.Hierarchy.L1D, m.Hierarchy.L2, m.Hierarchy.L3} {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("machine %s: %w", m.Name, err)
		}
	}
	if m.SocketCores < 1 {
		return fmt.Errorf("machine %s: socket core count must be >= 1", m.Name)
	}
	if err := validateUncoreShape(m.Hierarchy); err != nil {
		return fmt.Errorf("machine %s: %w", m.Name, err)
	}
	return nil
}

// maxL3Slices bounds the slice knob: far above any real LLC slice count, low
// enough that a hostile request cannot ask for a degenerate hierarchy.
const maxL3Slices = 64

// validateUncoreShape checks the sliced-uncore knobs: power-of-two counts,
// channels a multiple of slices (so every channel is owned by exactly one
// slice), and a per-slice L3 that is still a valid cache.
func validateUncoreShape(h cache.HierarchyConfig) error {
	s, c := h.L3Slices, h.MemChannels
	if s < 0 || s > maxL3Slices || (s > 1 && s&(s-1) != 0) {
		return fmt.Errorf("l3 slices must be a power of two in [1,%d], got %d", maxL3Slices, s)
	}
	if c < 0 || c > maxL3Slices || (c > 1 && c&(c-1) != 0) {
		return fmt.Errorf("mem channels must be a power of two in [1,%d], got %d", maxL3Slices, c)
	}
	if h.ChannelCount() < h.SliceCount() {
		return fmt.Errorf("mem channels (%d) must be >= l3 slices (%d)", h.ChannelCount(), h.SliceCount())
	}
	if eff := h.SliceCount(); eff > 1 {
		if h.L3.Prefetch.Enabled {
			return fmt.Errorf("l3 prefetching cannot be combined with l3 slices: a per-slice prefetcher would install lines the hash owns elsewhere")
		}
		per := h.L3
		per.SizeBytes = h.L3.SizeBytes / eff
		if err := per.Validate(); err != nil {
			return fmt.Errorf("per-slice l3 (1/%d of pool): %w", eff, err)
		}
	}
	return nil
}

// Freq returns the clock in Hz.
func (m Machine) Freq() float64 { return m.FreqGHz * 1e9 }

// scaleUncore divides the shared L3 capacity by the socket core count and
// returns the per-core memory bandwidth as core cycles per 64-byte line:
// freqGHz / (socketGBs/64) * cores. A fully loaded 18-core BDW socket at
// 76.8 GB/s leaves each core ~4.3 GB/s, i.e. one line every ~35 cycles.
func scaleUncore(l3Size int, socketGBs, freqGHz float64, cores int) (int, int64) {
	size := l3Size / cores
	if size < 64*1024 {
		size = 64 * 1024
	}
	cpl := int64(freqGHz*1e9/(socketGBs*1e9/64)*float64(cores) + 0.5)
	if cpl < 1 {
		cpl = 1
	}
	return size, cpl
}

// BDW returns the Broadwell-inspired configuration: a 4-wide out-of-order
// core with a deep ROB, 18-core socket scaling.
func BDW() Machine {
	const cores = 18
	l3, memCPL := scaleUncore(45*1024*1024, 76.8, 2.3, cores)
	return Machine{
		Name: "BDW",
		Core: cpu.Params{
			Name:              "BDW",
			FetchWidth:        4,
			DispatchWidth:     4,
			IssueWidth:        6,
			CommitWidth:       4,
			ROBSize:           192,
			RSSize:            60,
			FEQueueSize:       28,
			IntALUs:           4,
			IntMulDivs:        1,
			LoadPorts:         2,
			StorePorts:        1,
			VFPUnits:          2,
			VectorLanes:       8, // AVX2: 8 single-precision lanes
			Lat:               cpu.DefaultLatencies(),
			MispredictPenalty: 15,
			MemDisambiguation: true,
		},
		Bpred: bpred.DefaultConfig(),
		Hierarchy: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1-I", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1, MSHRs: 8},
			L1D: cache.Config{Name: "L1-D", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 4, MSHRs: 10},
			L2: cache.Config{
				Name: "L2", SizeBytes: 256 * 1024, Ways: 8, HitLatency: 12, MSHRs: 16,
				PortCycles: 1, Prefetch: cache.DefaultPrefetch(),
			},
			L3:   cache.Config{Name: "L3", SizeBytes: l3, Ways: 16, HitLatency: 35, MSHRs: 32},
			ITLB: cache.TLBConfig{Entries: 128, Ways: 4, MissLatency: 20},
			DTLB: cache.TLBConfig{Entries: 64, Ways: 4, MissLatency: 20},
			Mem:  mem.Config{Latency: 180, CyclesPerLine: memCPL},
		},
		SocketCores: cores,
		FreqGHz:     2.3,
	}
}

// KNL returns the Knights Landing-inspired configuration: a 2-wide
// out-of-order core with a modest ROB, microcoded-instruction decode stalls,
// AVX-512 vector units, 68-core socket scaling.
func KNL() Machine {
	const cores = 68
	l3, memCPL := scaleUncore(34*1024*1024, 400, 1.4, cores)
	lat := cpu.DefaultLatencies()
	lat.Mul = 5
	lat.Div = 32
	lat.FPAdd = 6
	lat.FPMul = 6
	lat.FMA = 6
	lat.Broadcast = 5
	return Machine{
		Name: "KNL",
		Core: cpu.Params{
			Name:              "KNL",
			FetchWidth:        2,
			DispatchWidth:     2,
			IssueWidth:        4,
			CommitWidth:       2,
			ROBSize:           72,
			RSSize:            38,
			FEQueueSize:       16,
			IntALUs:           2,
			IntMulDivs:        1,
			LoadPorts:         2,
			StorePorts:        1,
			VFPUnits:          2,
			VectorLanes:       16, // AVX-512: 16 single-precision lanes
			Lat:               lat,
			MispredictPenalty: 12,
			MemDisambiguation: true,
		},
		Bpred: bpred.Config{
			BimodalBits: 11, GshareBits: 11, ChoiceBits: 10,
			BTBEntries: 1024, BTBWays: 4, RASEntries: 16,
		},
		Hierarchy: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1-I", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1, MSHRs: 4},
			L1D: cache.Config{Name: "L1-D", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 4, MSHRs: 8},
			// KNL has no L3: its "L2" is the 1 MiB tile cache (shared by 2
			// cores); the L3 slot models the scaled MCDRAM-side capacity.
			L2: cache.Config{
				Name: "L2", SizeBytes: 512 * 1024, Ways: 16, HitLatency: 17, MSHRs: 12,
				PortCycles: 1, Prefetch: cache.DefaultPrefetch(),
			},
			L3:   cache.Config{Name: "MCDRAM$", SizeBytes: l3, Ways: 16, HitLatency: 60, MSHRs: 32},
			ITLB: cache.TLBConfig{Entries: 64, Ways: 4, MissLatency: 25},
			DTLB: cache.TLBConfig{Entries: 64, Ways: 4, MissLatency: 25},
			Mem:  mem.Config{Latency: 230, CyclesPerLine: memCPL},
		},
		SocketCores: cores,
		FreqGHz:     1.4,
	}
}

// SKX returns the Skylake-SP-inspired configuration: a 4-wide out-of-order
// core with AVX-512, 26-core socket scaling.
func SKX() Machine {
	const cores = 26
	l3, memCPL := scaleUncore(35*1024*1024, 128, 2.1, cores)
	lat := cpu.DefaultLatencies()
	lat.FMA = 4
	lat.FPAdd = 4
	lat.FPMul = 4
	lat.Broadcast = 6 // load-to-broadcast register sequence
	return Machine{
		Name: "SKX",
		Core: cpu.Params{
			Name:              "SKX",
			FetchWidth:        4,
			DispatchWidth:     4,
			IssueWidth:        8,
			CommitWidth:       4,
			ROBSize:           224,
			RSSize:            97,
			FEQueueSize:       32,
			IntALUs:           4,
			IntMulDivs:        1,
			LoadPorts:         2,
			StorePorts:        1,
			VFPUnits:          2,
			VectorLanes:       16, // AVX-512
			Lat:               lat,
			MispredictPenalty: 16,
			MemDisambiguation: true,
		},
		Bpred: bpred.DefaultConfig(),
		Hierarchy: cache.HierarchyConfig{
			L1I: cache.Config{Name: "L1-I", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 1, MSHRs: 8},
			L1D: cache.Config{Name: "L1-D", SizeBytes: 32 * 1024, Ways: 8, HitLatency: 4, MSHRs: 12},
			L2: cache.Config{
				Name: "L2", SizeBytes: 1024 * 1024, Ways: 16, HitLatency: 14, MSHRs: 16,
				PortCycles: 1, Prefetch: cache.DefaultPrefetch(),
			},
			L3:   cache.Config{Name: "L3", SizeBytes: l3, Ways: 11, HitLatency: 40, MSHRs: 32},
			ITLB: cache.TLBConfig{Entries: 128, Ways: 8, MissLatency: 20},
			DTLB: cache.TLBConfig{Entries: 64, Ways: 4, MissLatency: 20},
			Mem:  mem.Config{Latency: 190, CyclesPerLine: memCPL},
		},
		SocketCores: cores,
		FreqGHz:     2.1,
	}
}

// ByName returns a machine configuration by name (case-sensitive: "BDW",
// "KNL", "SKX").
func ByName(name string) (Machine, error) {
	switch name {
	case "BDW":
		return BDW(), nil
	case "KNL":
		return KNL(), nil
	case "SKX":
		return SKX(), nil
	}
	return Machine{}, fmt.Errorf("unknown machine %q (want BDW, KNL or SKX)", name)
}

// All returns all machine configurations.
func All() []Machine { return []Machine{BDW(), KNL(), SKX()} }
