package config

import (
	"strings"
	"testing"
)

func TestAllMachinesValidate(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"BDW", "KNL", "SKX"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Errorf("ByName(%s) = (%s,%v)", name, m.Name, err)
		}
	}
	if _, err := ByName("P4"); err == nil {
		t.Fatal("unknown machine should error")
	}
}

func TestPaperWidths(t *testing.T) {
	if w := BDW().Core.MinWidth(); w != 4 {
		t.Errorf("BDW is a 4-wide machine, MinWidth = %d", w)
	}
	if w := KNL().Core.MinWidth(); w != 2 {
		t.Errorf("KNL is a 2-wide machine, MinWidth = %d", w)
	}
	if w := SKX().Core.MinWidth(); w != 4 {
		t.Errorf("SKX is a 4-wide machine, MinWidth = %d", w)
	}
}

func TestAVX512Lanes(t *testing.T) {
	if KNL().Core.VectorLanes != 16 || SKX().Core.VectorLanes != 16 {
		t.Error("KNL and SKX support AVX-512: 16 single-precision lanes")
	}
	if BDW().Core.VectorLanes != 8 {
		t.Error("BDW is AVX2: 8 single-precision lanes")
	}
}

func TestUncoreScaling(t *testing.T) {
	// The shared L3 slice must be the socket capacity divided by cores.
	bdw := BDW()
	if got := bdw.Hierarchy.L3.SizeBytes; got != 45*1024*1024/18 {
		t.Errorf("BDW L3 slice = %d, want 45MiB/18", got)
	}
	// Per-core bandwidth must be far below a dedicated socket's.
	if bdw.Hierarchy.Mem.CyclesPerLine < 10 {
		t.Errorf("BDW scaled memory bandwidth looks unscaled: %d cycles/line",
			bdw.Hierarchy.Mem.CyclesPerLine)
	}
	knl := KNL()
	if knl.Hierarchy.Mem.CyclesPerLine >= bdw.Hierarchy.Mem.CyclesPerLine {
		t.Error("KNL (MCDRAM) should have more per-core bandwidth than BDW")
	}
}

func TestApplyIdealize(t *testing.T) {
	m := BDW().Apply(Idealize{PerfectICache: true, PerfectBpred: true})
	if !m.Hierarchy.PerfectL1I || m.Hierarchy.PerfectL1D {
		t.Fatal("Apply should set exactly the requested cache idealizations")
	}
	if !m.Core.PerfectBpred || m.Core.SingleCycleALU {
		t.Fatal("Apply should set exactly the requested core idealizations")
	}
	// Apply must not mutate the receiver's source.
	base := BDW()
	_ = base.Apply(Idealize{PerfectDCache: true})
	if base.Hierarchy.PerfectL1D {
		t.Fatal("Apply must be value semantics")
	}
}

func TestIdealizeString(t *testing.T) {
	if None().String() != "real" {
		t.Fatal("no idealizations should render as real")
	}
	s := Idealize{PerfectBpred: true, PerfectDCache: true}.String()
	if !strings.Contains(s, "bpred") || !strings.Contains(s, "dcache") {
		t.Fatalf("String = %q", s)
	}
}

func TestFreq(t *testing.T) {
	if BDW().Freq() != 2.3e9 {
		t.Fatal("Freq should convert GHz to Hz")
	}
}

func TestValidateCatchesBadSocket(t *testing.T) {
	m := BDW()
	m.SocketCores = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero socket cores should fail validation")
	}
}
