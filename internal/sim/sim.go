// Package sim ties the substrates together: it instantiates a machine
// configuration (core, predictor, hierarchy), runs a workload trace through
// it with the requested accountants attached, and returns the measured
// stacks and statistics. All experiment drivers and examples build on this
// package.
package sim

import (
	"context"
	"errors"
	"fmt"

	"perfstacks/internal/bpred"
	"perfstacks/internal/cache"
	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/cpu"
	"perfstacks/internal/mem"
	"perfstacks/internal/trace"
)

// Options selects what to measure during a run.
type Options struct {
	// CPI enables multi-stage CPI stack accounting.
	CPI bool
	// FLOPS enables FLOPS stack accounting.
	FLOPS bool
	// MemDepth enables the per-level D-cache breakdown accountant.
	MemDepth bool
	// Structural enables the issue-stage structural stall breakdown.
	Structural bool
	// Fetch enables the optional fetch/decode-stage CPI stack.
	Fetch bool
	// Scheme selects the wrong-path accounting scheme (§III-B).
	Scheme core.WrongPathScheme
	// WrongPath selects the pipeline's wrong-path model.
	WrongPath cpu.WrongPathMode
	// WarmupUops runs the first N uops without accounting, warming caches
	// and predictors as the paper's fast-forward phase does.
	WarmupUops uint64
	// NoSkip disables event-driven idle-window skipping, forcing the core
	// to iterate every cycle of every stall window. Results are bit-identical
	// either way (see TestSkipEquivalence); the flag exists as a debugging
	// escape hatch and for measuring the skipping speedup.
	NoSkip bool
	// Parallel steps the cores of an SMP run (RunSMP) on one goroutine
	// each, serializing shared-uncore accesses through the epoch gate in
	// ascending (cycle, core) order. Results are byte-identical to the
	// sequential lockstep (see TestParallelSMPEquivalence), so — like
	// NoSkip — the flag never splits the cache key space. Single-core runs
	// and n=1 SMP runs ignore it.
	Parallel bool
	// Context, when non-nil, lets the run be canceled cooperatively: the
	// step loop polls it every few thousand steps (off the per-cycle hot
	// path) and a canceled run returns with Result.Err wrapping ErrCanceled.
	Context context.Context
}

// Default measures multi-stage CPI stacks with oracle wrong-path handling on
// a functional-first pipeline — the paper's primary setup.
func Default() Options {
	return Options{CPI: true}
}

// Result holds everything measured in one run.
type Result struct {
	// Machine names the configuration.
	Machine string
	// Stacks is the multi-stage CPI stack (nil unless Options.CPI).
	Stacks *core.MultiStack
	// FLOPS is the FLOPS stack (zero unless Options.FLOPS).
	FLOPS core.FLOPSStack
	// MemDepth is the per-level D-cache breakdown (zero unless
	// Options.MemDepth).
	MemDepth core.MemDepthStack
	// Structural is the issue-stage structural breakdown (zero unless
	// Options.Structural).
	Structural core.StructuralStack
	// Fetch is the fetch-stage CPI stack (zero unless Options.Fetch).
	Fetch core.Stack
	// Stats is the pipeline statistics.
	Stats cpu.Stats
	// Bpred is the branch predictor statistics.
	Bpred bpred.Stats
	// Err is non-nil when the run ended abnormally: the trace reader
	// reported a stream fault after draining (trace.ErrOf), or the run was
	// canceled (wrapping ErrCanceled). The stacks and statistics then cover
	// only the uops delivered before the fault — plausible-looking but
	// partial data — and must not be reported as a complete measurement.
	Err error
	// Truncated is set when Err stems from a torn trace file
	// (trace.ErrTruncated): the input was cut short rather than malformed.
	Truncated bool
}

// CPIOf is the run's measured CPI: post-warmup when CPI stacks were
// collected, whole-run otherwise.
func (r *Result) CPIOf() float64 {
	if r.Stacks != nil {
		return r.Stacks.Stacks[0].TotalCPI()
	}
	return r.Stats.CPI()
}

// newPredictor builds the predictor for a machine (perfect when idealized).
func newPredictor(m config.Machine) bpred.Predictor {
	if m.Core.PerfectBpred {
		return bpred.Perfect{}
	}
	return bpred.NewTournament(m.Bpred)
}

// ErrCanceled marks a run stopped early through Options.Context. Test with
// errors.Is; the wrapped chain carries the context's own cause.
var ErrCanceled = errors.New("sim: run canceled")

// runErr derives the Result error contract for one finished core run:
// cancellation first (the trace state is then unknowable), a reader stream
// fault otherwise, nil for a clean end of trace.
func runErr(tr trace.Reader, canceled bool, ctx context.Context, committed uint64) (err error, truncated bool) {
	if canceled {
		return fmt.Errorf("%w after %d committed uops: %w", ErrCanceled, committed, ctx.Err()), false
	}
	if terr := trace.ErrOf(tr); terr != nil {
		return fmt.Errorf("sim: trace ended abnormally after %d committed uops: %w", committed, terr),
			errors.Is(terr, trace.ErrTruncated)
	}
	return nil, false
}

// Run simulates tr on machine m and returns the measurements.
func Run(m config.Machine, tr trace.Reader, opts Options) Result {
	return RunCustom(m, tr, opts, core.Options{
		Width:  m.Core.MinWidth(),
		Scheme: opts.Scheme,
	})
}

// RunCustom is Run with explicit accountant options; the ablation studies
// use it to disable the paper's width normalization.
func RunCustom(m config.Machine, tr trace.Reader, opts Options, acctOpts core.Options) Result {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	m.Core.WrongPath = opts.WrongPath
	hier := cache.NewHierarchy(m.Hierarchy)
	pred := newPredictor(m)
	c := cpu.New(m.Core, hier, pred, tr)
	c.SetNoSkip(opts.NoSkip)
	if opts.Context != nil {
		c.SetContext(opts.Context)
	}

	var cpiAcct *core.MultiStageAccountant
	if opts.CPI {
		cpiAcct = core.NewMultiStageAccountant(acctOpts)
		c.Attach(cpiAcct)
	}
	var flopsAcct *core.FLOPSAccountant
	if opts.FLOPS {
		flopsAcct = core.NewFLOPSAccountant(m.Core.VFPUnits, m.Core.VectorLanes)
		c.Attach(flopsAcct)
	}
	var depthAcct *core.MemDepthAccountant
	if opts.MemDepth {
		depthAcct = core.NewMemDepthAccountant(m.Core.MinWidth())
		c.Attach(depthAcct)
	}
	var structAcct *core.StructuralAccountant
	if opts.Structural {
		structAcct = core.NewStructuralAccountant(m.Core.MinWidth())
		c.Attach(structAcct)
	}
	var fetchAcct *core.FetchAccountant
	if opts.Fetch {
		fetchAcct = core.NewFetchAccountant(m.Core.MinWidth())
		c.Attach(fetchAcct)
	}
	c.SetWarmup(opts.WarmupUops)

	stats := c.Run()

	res := Result{Machine: m.Name, Stats: stats}
	res.Err, res.Truncated = runErr(tr, c.Canceled(), opts.Context, stats.Committed)
	if cpiAcct != nil {
		// Finalize with the accountant's own post-warmup commit count.
		res.Stacks = cpiAcct.Finalize(0)
	}
	if flopsAcct != nil {
		res.FLOPS = flopsAcct.Finalize()
	}
	if depthAcct != nil {
		res.MemDepth = depthAcct.Finalize()
	}
	if structAcct != nil {
		res.Structural = structAcct.Finalize()
	}
	if fetchAcct != nil {
		res.Fetch = fetchAcct.Finalize()
	}
	if t, ok := pred.(*bpred.Tournament); ok {
		res.Bpred = t.Stats
	}
	return res
}

// SMPResult aggregates a multi-core run: per-component averages over the
// homogeneous threads, as the paper aggregates (§IV, last ¶).
type SMPResult struct {
	Machine string
	// Stacks is the component-wise average multi-stage CPI stack.
	Stacks *core.MultiStack
	// FLOPS is the component-wise average FLOPS stack.
	FLOPS core.FLOPSStack
	// PerCore holds per-core pipeline statistics.
	PerCore []cpu.Stats
	// Err is non-nil when any thread's trace faulted or the gang was
	// canceled (the first error in core order; the aggregated stacks then
	// hold partial data). PerCoreErr pins each fault to its thread.
	Err        error
	PerCoreErr []error
}

// TotalFLOPs sums FLOPs over all cores.
func (r *SMPResult) TotalFLOPs() uint64 {
	var t uint64
	for _, s := range r.PerCore {
		t += s.FLOPs
	}
	return t
}

// RunSMP simulates n homogeneous cores sharing an L3 slice pool and memory.
// makeTrace builds the per-thread trace (typically the same generator seeded
// per thread). The shared L3 capacity is the per-core slice times n, so the
// aggregate uncore matches the paper's scaled-uncore methodology.
func RunSMP(m config.Machine, n int, makeTrace func(tid int) trace.Reader, opts Options) SMPResult {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	m.Core.WrongPath = opts.WrongPath

	// Shared uncore: one L3 pool (n per-core shares, address-hashed into
	// m.Hierarchy.L3Slices slices) over one memory whose bandwidth is n
	// per-core shares spread across the slice-owned channels.
	l3cfg := m.Hierarchy.L3
	l3cfg.SizeBytes *= n
	l3cfg.MSHRs *= n
	memCfg := m.Hierarchy.Mem
	if memCfg.CyclesPerLine > 0 {
		memCfg.CyclesPerLine /= int64(n)
		if memCfg.CyclesPerLine < 1 {
			memCfg.CyclesPerLine = 1
		}
	}
	sharedMem := mem.NewChannels(memCfg, m.Hierarchy.ChannelCount())
	sharedL3 := cache.NewSlicedL3(l3cfg, m.Hierarchy.SliceCount(), sharedMem)

	// In parallel mode every core's hierarchy is built over its epoch-gate
	// port instead of the bare shared level: the gate drains shared accesses
	// in ascending (cycle, core) order — exactly the sequential lockstep
	// order — so the results stay byte-identical regardless of slice count
	// (TestParallelSMPEquivalence); sequential runs route through the same
	// SlicedLevel, so the partition itself is mode-invariant.
	parallel := opts.Parallel && n > 1
	var gate *cache.EpochGate
	if parallel {
		gate = cache.NewEpochGate(sharedL3, n)
		gate.SetGrantHook(sharedMem.SetEpochFloor)
	}

	cores := make([]*cpu.Core, n)
	traces := make([]trace.Reader, n)
	cpiAccts := make([]*core.MultiStageAccountant, n)
	flopsAccts := make([]*core.FLOPSAccountant, n)
	for i := 0; i < n; i++ {
		shared := cache.Level(sharedL3)
		if parallel {
			shared = gate.Port(i)
		}
		hier := cache.NewHierarchyShared(m.Hierarchy, shared)
		pred := newPredictor(m)
		traces[i] = makeTrace(i)
		c := cpu.New(m.Core, hier, pred, traces[i])
		// Skipping is implicitly disabled in SMP runs (the barrier waiter
		// forces lockstep stepping); mirror the option anyway for clarity.
		c.SetNoSkip(opts.NoSkip)
		if opts.CPI {
			cpiAccts[i] = core.NewMultiStageAccountant(core.Options{
				Width:  m.Core.MinWidth(),
				Scheme: opts.Scheme,
			})
			c.Attach(cpiAccts[i])
		}
		if opts.FLOPS {
			flopsAccts[i] = core.NewFLOPSAccountant(m.Core.VFPUnits, m.Core.VectorLanes)
			c.Attach(flopsAccts[i])
		}
		c.SetWarmup(opts.WarmupUops)
		cores[i] = c
	}

	var canceled bool
	if parallel {
		psmp := cpu.NewParallelSMP(cores, gate)
		if opts.Context != nil {
			psmp.SetContext(opts.Context)
		}
		psmp.Run()
		canceled = psmp.Canceled()
	} else {
		smp := cpu.NewSMP(cores)
		if opts.Context != nil {
			smp.SetContext(opts.Context)
		}
		smp.Run()
		canceled = smp.Canceled()
	}

	res := SMPResult{
		Machine:    m.Name,
		PerCore:    make([]cpu.Stats, n),
		PerCoreErr: make([]error, n),
	}
	for i, c := range cores {
		res.PerCore[i] = c.Stats
		res.PerCoreErr[i], _ = runErr(traces[i], canceled, opts.Context, c.Stats.Committed)
		if res.Err == nil && res.PerCoreErr[i] != nil {
			res.Err = fmt.Errorf("sim: core %d: %w", i, res.PerCoreErr[i])
		}
	}
	if opts.CPI {
		stacks := make([][]core.Stack, core.NumStages)
		for st := range stacks {
			stacks[st] = make([]core.Stack, n)
		}
		for i := range cores {
			ms := cpiAccts[i].Finalize(0)
			for st := core.Stage(0); st < core.NumStages; st++ {
				stacks[st][i] = ms.Stacks[st]
			}
		}
		agg := &core.MultiStack{}
		for st := core.Stage(0); st < core.NumStages; st++ {
			agg.Stacks[st] = core.AverageStacks(stacks[st])
		}
		res.Stacks = agg
	}
	if opts.FLOPS {
		fs := make([]core.FLOPSStack, n)
		for i := range flopsAccts {
			fs[i] = flopsAccts[i].Finalize()
		}
		res.FLOPS = core.AverageFLOPSStacks(fs)
	}
	return res
}
