package sim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/cpu"
)

func TestCanonicalMachineDeterministic(t *testing.T) {
	a, err := CanonicalMachine(config.BDW())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalMachine(config.BDW())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same machine canonicalized to different bytes:\n%q\n%q", a, b)
	}
}

// TestCanonicalMachineInjective flips one field at a time and demands a
// distinct encoding for each perturbation — the property the cache key
// depends on.
func TestCanonicalMachineInjective(t *testing.T) {
	base, err := CanonicalMachine(config.BDW())
	if err != nil {
		t.Fatal(err)
	}
	perturb := []func(*config.Machine){
		func(m *config.Machine) { m.Core.ROBSize++ },
		func(m *config.Machine) { m.Core.FetchWidth++ },
		func(m *config.Machine) { m.Hierarchy.L1D.SizeBytes *= 2 },
		func(m *config.Machine) { m.Hierarchy.Mem.Latency++ },
		func(m *config.Machine) { m.FreqGHz += 0.1 },
		func(m *config.Machine) { m.Name = "BDW2" },
		func(m *config.Machine) { m.Core.MemDisambiguation = !m.Core.MemDisambiguation },
	}
	seen := map[string]int{string(base): -1}
	for i, p := range perturb {
		m := config.BDW()
		p(&m)
		enc, err := CanonicalMachine(m)
		if err != nil {
			t.Fatalf("perturbation %d: %v", i, err)
		}
		if prev, dup := seen[string(enc)]; dup {
			t.Fatalf("perturbation %d collides with %d", i, prev)
		}
		seen[string(enc)] = i
	}
}

func TestCanonicalMachineRejectsInvalid(t *testing.T) {
	m := config.BDW()
	m.Core.FetchWidth = -1
	if _, err := CanonicalMachine(m); !errors.Is(err, ErrBadValue) {
		t.Fatalf("negative width: got %v, want ErrBadValue", err)
	}

	m = config.BDW()
	m.FreqGHz = math.NaN()
	_, err := CanonicalMachine(m)
	if !errors.Is(err, ErrBadValue) {
		t.Fatalf("NaN clock: got %v, want ErrBadValue", err)
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "config.Machine.FreqGHz" {
		t.Fatalf("NaN clock: got field error %+v, want config.Machine.FreqGHz", fe)
	}

	m = config.BDW()
	m.FreqGHz = math.Inf(1)
	if _, err := CanonicalMachine(m); !errors.Is(err, ErrBadValue) {
		t.Fatalf("infinite clock: got %v, want ErrBadValue", err)
	}
}

func TestParseSchemeTyped(t *testing.T) {
	for name, want := range map[string]core.WrongPathScheme{
		"":            core.WrongPathOracle,
		"oracle":      core.WrongPathOracle,
		"simple":      core.WrongPathSimple,
		"speculative": core.WrongPathSpeculative,
	} {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Fatalf("ParseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheme("orcale"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("misspelled scheme: got %v, want ErrBadValue", err)
	}
	if _, err := ParseWrongPathMode("synthetic"); !errors.Is(err, ErrBadValue) {
		t.Fatalf("misspelled mode: got %v, want ErrBadValue", err)
	}
	if m, err := ParseWrongPathMode("synth"); err != nil || m != cpu.WrongPathSynth {
		t.Fatalf("ParseWrongPathMode(synth) = %v, %v", m, err)
	}
}

func TestValidateOptionsRange(t *testing.T) {
	if err := ValidateOptions(Default()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateOptions(Options{Scheme: core.WrongPathScheme(7)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("out-of-range scheme: got %v, want ErrBadValue", err)
	}
	if err := ValidateOptions(Options{WrongPath: cpu.WrongPathMode(-1)}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("out-of-range mode: got %v, want ErrBadValue", err)
	}
}

// TestCanonicalOptionsKeySpace checks that every measurement-relevant field
// splits the encoding and the two excluded fields do not.
func TestCanonicalOptionsKeySpace(t *testing.T) {
	base, err := CanonicalOptions(Default())
	if err != nil {
		t.Fatal(err)
	}

	// NoSkip and Context must not change the canonical bytes: both are
	// bit-identical/irrelevant to the measurement.
	o := Default()
	o.NoSkip = true
	o.Context = context.Background()
	same, err := CanonicalOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, same) {
		t.Fatalf("NoSkip/Context changed the canonical options:\n%q\n%q", base, same)
	}

	perturb := []func(*Options){
		func(o *Options) { o.CPI = !o.CPI },
		func(o *Options) { o.FLOPS = !o.FLOPS },
		func(o *Options) { o.MemDepth = !o.MemDepth },
		func(o *Options) { o.Structural = !o.Structural },
		func(o *Options) { o.Fetch = !o.Fetch },
		func(o *Options) { o.Scheme = core.WrongPathSimple },
		func(o *Options) { o.WrongPath = cpu.WrongPathSynth },
		func(o *Options) { o.WarmupUops += 1000 },
	}
	seen := map[string]int{string(base): -1}
	for i, p := range perturb {
		o := Default()
		p(&o)
		enc, err := CanonicalOptions(o)
		if err != nil {
			t.Fatalf("perturbation %d: %v", i, err)
		}
		if prev, dup := seen[string(enc)]; dup {
			t.Fatalf("perturbation %d collides with %d", i, prev)
		}
		seen[string(enc)] = i
	}
}

func TestCanonicalBytesInjectivityCorners(t *testing.T) {
	// A string containing separator bytes must not collide with structure.
	type s struct{ A, B string }
	x, err := CanonicalBytes("s", s{A: `x";B="y`, B: ""})
	if err != nil {
		t.Fatal(err)
	}
	y, err := CanonicalBytes("s", s{A: "x", B: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(x, y) {
		t.Fatal("quoting failed: embedded separators collided")
	}

	// Maps encode sorted, so insertion order is invisible.
	m1 := map[string]int{"a": 1, "b": 2}
	m2 := map[string]int{"b": 2, "a": 1}
	e1, err := CanonicalBytes("m", m1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := CanonicalBytes("m", m2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("map encoding depends on insertion order")
	}
}

// TestCanonicalUncoreShapeKeys pins the cache-key contract of the sliced
// uncore knobs: the default shape encodes exactly as it did before the
// fields existed (no stored key changed when the knobs were added), spelled
// out defaults normalize onto the omitted form, and any non-default shape
// keys a distinct configuration.
func TestCanonicalUncoreShapeKeys(t *testing.T) {
	base, err := CanonicalMachine(config.BDW())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(base, []byte("L3Slices")) || bytes.Contains(base, []byte("MemChannels")) {
		t.Fatalf("default machine encodes the uncore shape fields, breaking every pre-slicing key:\n%q", base)
	}

	one := config.BDW()
	one.Hierarchy.L3Slices = 1
	one.Hierarchy.MemChannels = 1
	ob, err := CanonicalMachine(one)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, ob) {
		t.Fatalf("explicit slices=1/channels=1 must key like the default:\n%q\n%q", base, ob)
	}

	followed := config.BDW()
	followed.Hierarchy.L3Slices = 4
	fb, err := CanonicalMachine(followed)
	if err != nil {
		t.Fatal(err)
	}
	spelled := config.BDW()
	spelled.Hierarchy.L3Slices = 4
	spelled.Hierarchy.MemChannels = 4 // the channel count slices=4 implies
	sb, err := CanonicalMachine(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, sb) {
		t.Fatalf("channels equal to the slice count must key like the implied default:\n%q\n%q", fb, sb)
	}
	if bytes.Equal(base, fb) {
		t.Fatal("slices=4 must key differently from the monolithic default")
	}

	wide := config.BDW()
	wide.Hierarchy.L3Slices = 4
	wide.Hierarchy.MemChannels = 8
	wb, err := CanonicalMachine(wide)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fb, wb) {
		t.Fatal("channels=8 must key differently from the implied channels=4")
	}

	bad := config.BDW()
	bad.Hierarchy.L3Slices = 3
	if _, err := CanonicalMachine(bad); !errors.Is(err, ErrBadValue) {
		t.Fatalf("non-power-of-two slice count: got %v, want ErrBadValue", err)
	}
	bad = config.BDW()
	bad.Hierarchy.L3Slices = 4
	bad.Hierarchy.MemChannels = 2
	if _, err := CanonicalMachine(bad); !errors.Is(err, ErrBadValue) {
		t.Fatalf("fewer channels than slices: got %v, want ErrBadValue", err)
	}
}
