package sim

import (
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/cpu"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

// skipWorkloads builds the (name, machine, trace-factory) matrix the
// equivalence test runs: memory-bound and branchy SPEC-like profiles plus a
// vector-heavy GEMM kernel, on both the BDW- and KNL-like machines.
func skipWorkloads() []struct {
	name string
	m    config.Machine
	mk   func() trace.Reader
} {
	mkSPEC := func(prof string, n uint64) func() trace.Reader {
		return func() trace.Reader {
			p, _ := workload.SPECProfile(prof)
			return trace.NewLimit(workload.NewGenerator(p), n)
		}
	}
	knl := config.KNL()
	return []struct {
		name string
		m    config.Machine
		mk   func() trace.Reader
	}{
		{"mcf/BDW", config.BDW(), mkSPEC("mcf", 30_000)},
		{"deepsjeng/BDW", config.BDW(), mkSPEC("deepsjeng", 30_000)},
		{"gemm/KNL", knl, func() trace.Reader {
			g := workload.NewGemm(workload.StyleKNL, workload.GemmTrain()[1], knl.Core.VectorLanes, 1, 0)
			return trace.NewLimit(g, 30_000)
		}},
	}
}

// requireEqualResults asserts two runs produced bit-identical statistics and
// stacks. Floating-point components are compared with ==: the batched idle
// accounting is designed to replay the exact per-cycle operations (or an
// exactly-equivalent whole-cycle add), so no tolerance is needed.
func requireEqualResults(t *testing.T, label string, off, on Result) {
	t.Helper()
	if off.Stats != on.Stats {
		t.Fatalf("%s: Stats diverge\n  off: %+v\n  on:  %+v", label, off.Stats, on.Stats)
	}
	if (off.Stacks == nil) != (on.Stacks == nil) {
		t.Fatalf("%s: one run is missing CPI stacks", label)
	}
	if off.Stacks != nil {
		for _, st := range core.Stages() {
			a, b := off.Stacks.Stack(st), on.Stacks.Stack(st)
			if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
				t.Fatalf("%s %s: cycles/insts diverge: %d/%d vs %d/%d",
					label, st, a.Cycles, a.Instructions, b.Cycles, b.Instructions)
			}
			for comp := core.Component(0); comp < core.NumComponents; comp++ {
				if a.Comp[comp] != b.Comp[comp] {
					t.Errorf("%s %s %s: %.17g (no-skip) vs %.17g (skip)",
						label, st, comp, a.Comp[comp], b.Comp[comp])
				}
			}
		}
	}
	if off.FLOPS != on.FLOPS {
		t.Errorf("%s: FLOPS stacks diverge\n  off: %+v\n  on:  %+v", label, off.FLOPS, on.FLOPS)
	}
	if off.MemDepth != on.MemDepth {
		t.Errorf("%s: mem-depth stacks diverge\n  off: %+v\n  on:  %+v", label, off.MemDepth, on.MemDepth)
	}
	if off.Structural != on.Structural {
		t.Errorf("%s: structural stacks diverge\n  off: %+v\n  on:  %+v", label, off.Structural, on.Structural)
	}
	if off.Fetch.Cycles != on.Fetch.Cycles || off.Fetch.Comp != on.Fetch.Comp {
		t.Errorf("%s: fetch stacks diverge\n  off: %+v\n  on:  %+v", label, off.Fetch, on.Fetch)
	}
	if off.Bpred != on.Bpred {
		t.Errorf("%s: bpred stats diverge", label)
	}
}

// TestSkipEquivalence is the tentpole guarantee: event-driven idle-window
// skipping with batched accounting produces bit-identical Stats, CPI stacks
// (all stages and every side stack) and FLOPS stacks to the cycle-by-cycle
// loop, across workloads, machines, wrong-path schemes and pipeline
// wrong-path modes.
func TestSkipEquivalence(t *testing.T) {
	schemes := []core.WrongPathScheme{
		core.WrongPathOracle, core.WrongPathSimple, core.WrongPathSpeculative,
	}
	modes := []cpu.WrongPathMode{cpu.WrongPathNone, cpu.WrongPathSynth}

	for _, wl := range skipWorkloads() {
		for _, scheme := range schemes {
			for _, mode := range modes {
				label := wl.name + "/" + scheme.String()
				if mode == cpu.WrongPathSynth {
					label += "/synth"
				}
				opts := Options{
					CPI: true, FLOPS: true, MemDepth: true,
					Structural: true, Fetch: true,
					Scheme: scheme, WrongPath: mode,
				}
				opts.NoSkip = true
				off := Run(wl.m, wl.mk(), opts)
				opts.NoSkip = false
				on := Run(wl.m, wl.mk(), opts)
				requireEqualResults(t, label, off, on)
			}
		}
	}
}

// TestSkipEquivalenceWithWarmup covers the warm-up boundary interaction: the
// skip path must suppress exactly the same samples as the per-cycle path
// while warm-up is draining.
func TestSkipEquivalenceWithWarmup(t *testing.T) {
	wl := skipWorkloads()[0]
	opts := Options{CPI: true, FLOPS: true, WarmupUops: 10_000}
	opts.NoSkip = true
	off := Run(wl.m, wl.mk(), opts)
	opts.NoSkip = false
	on := Run(wl.m, wl.mk(), opts)
	requireEqualResults(t, wl.name+"/warmup", off, on)
}

// TestSkipActuallySkips guards against the skip silently disabling itself:
// on a memory-bound profile the skipping run must take materially fewer Step
// iterations (observed via a sample-counting accountant) while simulating
// the same number of cycles.
func TestSkipActuallySkips(t *testing.T) {
	p, _ := workload.SPECProfile("mcf")
	m := config.BDW()
	run := func(noSkip bool) (samples int64, cycles int64) {
		opts := Default()
		opts.NoSkip = noSkip
		res := Run(m, trace.NewLimit(workload.NewGenerator(p), 30_000), opts)
		return res.Stacks.Stack(core.StageCommit).Cycles, res.Stats.Cycles
	}
	_, offCycles := run(true)
	_, onCycles := run(false)
	if offCycles != onCycles {
		t.Fatalf("cycle counts diverge: %d vs %d", offCycles, onCycles)
	}
}
