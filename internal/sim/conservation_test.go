package sim

import (
	"math"
	"math/rand"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

// perturbProfile derives a random-but-valid workload from a named SPEC-like
// profile: the rng reshapes footprints, branch behavior, access-pattern mix
// and dependence structure within the generator's domain, so each case
// stresses a different corner of the accounting (frontend-bound, memory-bound,
// chain-bound) without hand-writing profiles.
func perturbProfile(base workload.Profile, r *rand.Rand) workload.Profile {
	p := base
	p.Seed = r.Uint64()
	scale := func(v int) int {
		s := int(float64(v) * (0.5 + r.Float64()*1.5))
		if s < 1 {
			s = 1
		}
		return s
	}
	frac := func() float64 { return r.Float64() }
	p.CodeFootprint = scale(base.CodeFootprint)
	p.DataFootprint = scale(base.DataFootprint)
	p.BranchEntropy = frac()
	p.CodeSkew = frac()
	p.ChainBias = frac()
	p.ChainOnLong = frac()
	// Keep the load-kind partition valid: StreamFrac + ChaseFrac <= 1.
	p.StreamFrac = frac()
	p.ChaseFrac = (1 - p.StreamFrac) * frac()
	if r.Intn(2) == 0 {
		p.StreamStride = 8
	} else {
		p.StreamStride = 64
	}
	p.InnerTrip = scale(base.InnerTrip)
	return p
}

// checkConserved asserts Σ components ≈ cycles with a relative tolerance.
func checkConserved(t *testing.T, label string, sum float64, cycles int64) {
	t.Helper()
	if math.Abs(sum-float64(cycles)) > 1e-6*(float64(cycles)+1) {
		t.Errorf("%s: components sum to %v, want %d cycles (diff %g)",
			label, sum, cycles, sum-float64(cycles))
	}
}

// TestConservationProperty is the randomized conservation property: for
// random workloads, every wrong-path scheme, and skipping on or off, the
// multi-stage stacks, the fetch stack and the FLOPS stack each decompose the
// cycle count exactly. Under -tags simdebug the same runs additionally
// exercise the accountants' internal invariant checks (per-sample
// well-formedness and periodic mid-run conservation, including the
// speculative scheme's in-flight buffers).
func TestConservationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	bases := []string{"mcf", "imagick", "deepsjeng"}
	schemes := []core.WrongPathScheme{
		core.WrongPathOracle, core.WrongPathSimple, core.WrongPathSpeculative,
	}
	m := config.BDW()
	const uops = 12_000

	for i := 0; i < 6; i++ {
		base, ok := workload.SPECProfile(bases[i%len(bases)])
		if !ok {
			t.Fatalf("unknown base profile %q", bases[i%len(bases)])
		}
		p := perturbProfile(base, r)
		for _, scheme := range schemes {
			for _, noSkip := range []bool{false, true} {
				label := p.Name + "/" + scheme.String()
				if noSkip {
					label += "/noskip"
				}
				opts := Options{
					CPI: true, FLOPS: true, Fetch: true,
					MemDepth: true, Structural: true,
					Scheme: scheme, NoSkip: noSkip,
				}
				res := Run(m, trace.NewLimit(workload.NewGenerator(p), uops), opts)
				for _, st := range core.Stages() {
					s := res.Stacks.Stack(st)
					checkConserved(t, label+"/"+st.String(), s.Sum(), s.Cycles)
				}
				checkConserved(t, label+"/fetch", res.Fetch.Sum(), res.Fetch.Cycles)
				checkConserved(t, label+"/flops", res.FLOPS.Sum(), res.FLOPS.Cycles)
				// The side stacks decompose only their share of the stalls.
				if tot := res.MemDepth.CommitTotal(); tot > float64(res.Stats.Cycles)+1e-6 {
					t.Errorf("%s: memdepth commit total %v exceeds cycles %d", label, tot, res.Stats.Cycles)
				}
				if tot := res.Structural.Total(); tot > float64(res.Stats.Cycles)+1e-6 {
					t.Errorf("%s: structural total %v exceeds cycles %d", label, tot, res.Stats.Cycles)
				}
			}
		}
	}
}
