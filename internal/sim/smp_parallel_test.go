package sim

import (
	"fmt"
	"runtime"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/faultinject"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

// convGang builds the per-thread conv traces the SMP tests use: barriered,
// with per-thread seeds and skewed paces so threads genuinely wait on each
// other and the shared-L3 interleaving matters.
func convGang(m config.Machine, barrierEvery int, uops uint64) func(tid int) trace.Reader {
	return func(tid int) trace.Reader {
		k := workload.NewConv(workload.StyleSKX, workload.ConvTrain()[6],
			workload.ConvFwd, m.Core.VectorLanes, uint64(tid)+1, barrierEvery)
		k.SetExtraOverhead(tid * 3) // skewed barrier paces
		return trace.NewLimit(k, uops)
	}
}

// requireSMPEqual fails unless the two SMP results are byte-identical:
// every stack component, every per-core statistic, and the per-core error
// strings (fault messages embed the committed-uop count, so a divergent
// simulation shows up in the error text too).
func requireSMPEqual(t *testing.T, label string, seq, par SMPResult) {
	t.Helper()
	if len(seq.PerCore) != len(par.PerCore) {
		t.Fatalf("%s: per-core count %d vs %d", label, len(seq.PerCore), len(par.PerCore))
	}
	for i := range seq.PerCore {
		if seq.PerCore[i] != par.PerCore[i] {
			t.Errorf("%s: core %d stats differ:\nsequential %+v\nparallel   %+v",
				label, i, seq.PerCore[i], par.PerCore[i])
		}
		se, pe := seq.PerCoreErr[i], par.PerCoreErr[i]
		switch {
		case (se == nil) != (pe == nil):
			t.Errorf("%s: core %d error mismatch: %v vs %v", label, i, se, pe)
		case se != nil && se.Error() != pe.Error():
			t.Errorf("%s: core %d error text differs:\n%v\n%v", label, i, se, pe)
		}
	}
	if (seq.Err == nil) != (par.Err == nil) {
		t.Errorf("%s: aggregate error mismatch: %v vs %v", label, seq.Err, par.Err)
	}
	if (seq.Stacks == nil) != (par.Stacks == nil) {
		t.Fatalf("%s: stacks presence differs", label)
	}
	if seq.Stacks != nil {
		for st := core.Stage(0); st < core.NumStages; st++ {
			a, b := seq.Stacks.Stacks[st], par.Stacks.Stacks[st]
			if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
				t.Errorf("%s: stage %v cycles/instructions differ: %d/%d vs %d/%d",
					label, st, a.Cycles, a.Instructions, b.Cycles, b.Instructions)
			}
			for c := core.Component(0); c < core.NumComponents; c++ {
				if a.Comp[c] != b.Comp[c] {
					t.Errorf("%s: stage %v component %v differs: %v vs %v",
						label, st, c, a.Comp[c], b.Comp[c])
				}
			}
		}
	}
	if seq.FLOPS != par.FLOPS {
		t.Errorf("%s: FLOPS stacks differ:\n%+v\n%+v", label, seq.FLOPS, par.FLOPS)
	}
}

// runBothSMP runs the same gang sequentially and in parallel.
func runBothSMP(m config.Machine, n int, mk func(int) trace.Reader, opts Options) (seq, par SMPResult) {
	opts.Parallel = false
	seq = RunSMP(m, n, mk, opts)
	opts.Parallel = true
	par = RunSMP(m, n, mk, opts)
	return seq, par
}

// TestParallelSMPEquivalence is the byte-identity contract of parallel SMP
// stepping: across L3 slice counts, GOMAXPROCS settings (goroutine
// multiplexing degrees) and all three wrong-path accounting schemes, the
// parallel run must reproduce the sequential lockstep exactly — same stacks,
// same per-core statistics, same shared-L3/memory interleaving consequences.
// Both harnesses route through the same SlicedLevel, so the slice dimension
// checks the per-slice ordering domains, not the partition itself.
func TestParallelSMPEquivalence(t *testing.T) {
	m := config.SKX()
	schemes := []core.WrongPathScheme{
		core.WrongPathOracle, core.WrongPathSimple, core.WrongPathSpeculative,
	}
	for _, slices := range []int{1, 2, 4} {
		for _, procs := range []int{1, 2, 8} {
			for _, scheme := range schemes {
				name := fmt.Sprintf("slices=%d/procs=%d/scheme=%s", slices, procs, scheme)
				t.Run(name, func(t *testing.T) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					mm := m
					mm.Hierarchy.L3Slices = slices
					opts := Options{CPI: true, FLOPS: true, Scheme: scheme}
					seq, par := runBothSMP(mm, 3, convGang(mm, 3000, 20000), opts)
					requireSMPEqual(t, name, seq, par)
				})
			}
		}
	}
}

// TestParallelSMPEquivalenceUnevenFinish covers the finish-release coupling:
// threads with different trace lengths leave the gang at different cycles,
// and a finish can be the arrival that releases a barrier round.
func TestParallelSMPEquivalenceUnevenFinish(t *testing.T) {
	m := config.SKX()
	mk := func(tid int) trace.Reader {
		k := workload.NewConv(workload.StyleSKX, workload.ConvTrain()[6],
			workload.ConvFwd, m.Core.VectorLanes, uint64(tid)+1, 2500)
		k.SetExtraOverhead(tid)
		return trace.NewLimit(k, uint64(8000+6000*tid))
	}
	for _, slices := range []int{1, 4} {
		t.Run(fmt.Sprintf("slices=%d", slices), func(t *testing.T) {
			mm := m
			mm.Hierarchy.L3Slices = slices
			seq, par := runBothSMP(mm, 4, mk, Options{CPI: true})
			requireSMPEqual(t, "uneven-finish", seq, par)
			if seq.Stacks.Stack(core.StageIssue).Comp[core.CompUnsched] <= 0 {
				t.Fatal("test workload should accumulate Unsched cycles")
			}
		})
	}
}

// TestParallelSMPEquivalenceFault injects a mid-trace stream fault on one
// core: the faulting core drains early (its finish releases its siblings'
// barriers), and both harnesses must agree on SMPResult.PerCoreErr down to
// the committed-uop count embedded in the error text.
func TestParallelSMPEquivalenceFault(t *testing.T) {
	m := config.SKX()
	mk := func(tid int) trace.Reader {
		k := workload.NewConv(workload.StyleSKX, workload.ConvTrain()[6],
			workload.ConvFwd, m.Core.VectorLanes, uint64(tid)+1, 3000)
		k.SetExtraOverhead(tid * 2)
		if tid == 1 {
			return faultinject.FailAfter(trace.NewLimit(k, 20000), 7000, nil)
		}
		return trace.NewLimit(k, 20000)
	}
	for _, slices := range []int{1, 4} {
		t.Run(fmt.Sprintf("slices=%d", slices), func(t *testing.T) {
			mm := m
			mm.Hierarchy.L3Slices = slices
			seq, par := runBothSMP(mm, 3, mk, Options{CPI: true})
			requireSMPEqual(t, "fault", seq, par)
			if seq.PerCoreErr[1] == nil || par.PerCoreErr[1] == nil {
				t.Fatal("core 1's injected fault must surface in PerCoreErr on both harnesses")
			}
			if seq.PerCoreErr[0] != nil || seq.PerCoreErr[2] != nil {
				t.Fatal("healthy cores must not report errors")
			}
			if seq.Err == nil || par.Err == nil {
				t.Fatal("the gang error must be set")
			}
		})
	}
}

// TestParallelSMPWarmup checks the warm-up boundary survives parallel
// stepping (warm-up is per-core state, but it shifts which samples the
// accountants see, making any divergence visible).
func TestParallelSMPWarmup(t *testing.T) {
	m := config.SKX()
	opts := Options{CPI: true, WarmupUops: 5000}
	seq, par := runBothSMP(m, 2, convGang(m, 4000, 18000), opts)
	requireSMPEqual(t, "warmup", seq, par)
}
