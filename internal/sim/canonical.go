// Canonical encoding and boundary validation.
//
// The result-cache service keys stored measurements by content: SHA-256 over
// the canonical bytes of (machine configuration, run options, trace
// identity) plus the schema version. Canonical bytes must be injective —
// two semantically different configurations must never encode to the same
// byte string — and total: every value that can reach a cache key either
// encodes deterministically or is rejected with a typed error at the API
// boundary, instead of surfacing as a panic or a NaN deep inside the core
// loop.
package sim

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/cpu"
)

// SchemaVersion names the simulator's observable behaviour and the result
// wire format. It is folded into every cache key and stamped into every
// serialized result, so bumping it invalidates all previously stored
// measurements at once. Bump it whenever a change alters what a simulation
// measures (accounting semantics, pipeline model, workload generation) or
// how results serialize — structural config changes need no bump, since any
// added or renamed field already changes the canonical bytes and therefore
// the key.
const SchemaVersion = "perfstacks-v1"

// ErrBadValue marks a configuration or option rejected at the API boundary:
// a NaN or infinite float, a negative width, an unknown enum value or name.
// Test with errors.Is; errors.As against *FieldError recovers the field.
var ErrBadValue = errors.New("sim: invalid value")

// FieldError pins an ErrBadValue to the field (dotted path) that carried it.
type FieldError struct {
	// Field is the dotted path of the offending field, e.g.
	// "Machine.Core.FetchWidth" or "Options.Scheme".
	Field string
	// Reason says what was wrong with the value.
	Reason string
}

// Error implements the error interface.
func (e *FieldError) Error() string {
	return fmt.Sprintf("%s: %s: %s", ErrBadValue.Error(), e.Field, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBadValue) hold.
func (e *FieldError) Unwrap() error { return ErrBadValue }

// badField builds the standard typed boundary error.
func badField(field, reason string) error {
	return &FieldError{Field: field, Reason: reason}
}

// ParseScheme maps the wire/flag names onto the wrong-path accounting
// schemes. Unknown names return a typed ErrBadValue instead of silently
// defaulting — a misspelled scheme must not masquerade as an oracle run (or
// worse, become a distinct cache key serving wrong data).
func ParseScheme(name string) (core.WrongPathScheme, error) {
	switch name {
	case "", "oracle":
		return core.WrongPathOracle, nil
	case "simple":
		return core.WrongPathSimple, nil
	case "speculative":
		return core.WrongPathSpeculative, nil
	}
	return 0, badField("Options.Scheme", fmt.Sprintf("unknown wrong-path scheme %q (want oracle, simple or speculative)", name))
}

// ParseWrongPathMode maps the wire/flag names onto the pipeline wrong-path
// models, with the same typed-rejection contract as ParseScheme.
func ParseWrongPathMode(name string) (cpu.WrongPathMode, error) {
	switch name {
	case "", "none":
		return cpu.WrongPathNone, nil
	case "synth":
		return cpu.WrongPathSynth, nil
	}
	return 0, badField("Options.WrongPath", fmt.Sprintf("unknown wrong-path mode %q (want none or synth)", name))
}

// ValidateOptions rejects options whose enum fields are outside their
// defined ranges. Options built through ParseScheme/ParseWrongPathMode are
// valid by construction; this catches hand-assembled values (a cast integer,
// an uninitialized field struct-copied from bad input) before they select
// undefined accounting behaviour in the core loop.
func ValidateOptions(opts Options) error {
	if opts.Scheme < core.WrongPathOracle || opts.Scheme > core.WrongPathSpeculative {
		return badField("Options.Scheme", fmt.Sprintf("wrong-path scheme %d out of range", opts.Scheme))
	}
	if opts.WrongPath < cpu.WrongPathNone || opts.WrongPath > cpu.WrongPathSynth {
		return badField("Options.WrongPath", fmt.Sprintf("wrong-path mode %d out of range", opts.WrongPath))
	}
	return nil
}

// CanonicalOptions returns the canonical bytes of the measurement-relevant
// option fields. NoSkip, Parallel and Context are deliberately excluded:
// skipping and parallel SMP stepping are bit-identical by contract
// (TestSkipEquivalence, TestParallelSMPEquivalence) and cancellation never
// changes a completed measurement, so none of them may split the cache key
// space.
func CanonicalOptions(opts Options) ([]byte, error) {
	if err := ValidateOptions(opts); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 96)
	buf = append(buf, "sim.Options{"...)
	buf = appendKV(buf, "CPI", strconv.FormatBool(opts.CPI))
	buf = appendKV(buf, "FLOPS", strconv.FormatBool(opts.FLOPS))
	buf = appendKV(buf, "MemDepth", strconv.FormatBool(opts.MemDepth))
	buf = appendKV(buf, "Structural", strconv.FormatBool(opts.Structural))
	buf = appendKV(buf, "Fetch", strconv.FormatBool(opts.Fetch))
	buf = appendKV(buf, "Scheme", opts.Scheme.String())
	buf = appendKV(buf, "WrongPath", strconv.Itoa(int(opts.WrongPath)))
	buf = appendKV(buf, "WarmupUops", strconv.FormatUint(opts.WarmupUops, 10))
	buf = append(buf, '}')
	return buf, nil
}

// CanonicalMachine validates m and returns its canonical bytes. Unlike
// RunCustom — which panics on an invalid machine, appropriate for the
// trusted batch drivers — this is the API-boundary form: a negative width, a
// too-small cache or a NaN clock comes back as a typed ErrBadValue the
// caller can turn into a 400 response or a CLI usage error.
func CanonicalMachine(m config.Machine) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, &FieldError{Field: "Machine", Reason: err.Error()}
	}
	// Normalize the uncore cardinality knobs to their omitted form: 0 and 1
	// slices are the same monolithic L3, and a channel count equal to the
	// slice count is the same device the empty field builds, so spelling the
	// default out must not mint a second key for identical measurements.
	if m.Hierarchy.L3Slices == 1 {
		m.Hierarchy.L3Slices = 0
	}
	if m.Hierarchy.MemChannels == m.Hierarchy.SliceCount() {
		m.Hierarchy.MemChannels = 0
	}
	return CanonicalBytes("config.Machine", m)
}

// appendKV appends one `key=value;` pair.
func appendKV(buf []byte, key, val string) []byte {
	buf = append(buf, key...)
	buf = append(buf, '=')
	buf = append(buf, val...)
	return append(buf, ';')
}

// CanonicalBytes returns a deterministic, injective byte encoding of v
// under the given type label: structs encode field names and values in
// declaration order, maps sort their keys, strings are quoted, lengths are
// explicit. It is total over the configuration value kinds (bools, ints,
// uints, floats, strings, structs, arrays, slices, maps, pointers); floats
// that are NaN or infinite, and kinds that cannot encode canonically
// (channels, functions, non-nil interfaces), are rejected with a typed
// ErrBadValue naming the offending field path.
func CanonicalBytes(label string, v any) ([]byte, error) {
	buf := make([]byte, 0, 512)
	buf = append(buf, label...)
	buf = append(buf, ':')
	return appendCanonical(buf, label, reflect.ValueOf(v))
}

// appendCanonical is CanonicalBytes' recursive worker; path names the field
// for error reporting.
func appendCanonical(buf []byte, path string, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		return append(buf, strconv.FormatBool(v.Bool())...), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.AppendInt(buf, v.Int(), 10), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return strconv.AppendUint(buf, v.Uint(), 10), nil
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) {
			return nil, badField(path, "NaN is not a valid configuration value")
		}
		if math.IsInf(f, 0) {
			return nil, badField(path, "infinite values are not valid configuration values")
		}
		return strconv.AppendFloat(buf, f, 'g', -1, 64), nil
	case reflect.String:
		return strconv.AppendQuote(buf, v.String()), nil
	case reflect.Struct:
		buf = append(buf, '{')
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return nil, badField(path+"."+f.Name, "unexported fields cannot be canonicalized")
			}
			// A `canon:"omitzero"` tag marks a field added after keys of the
			// untagged shape were stored: the zero value (the semantics every
			// stored key was measured under) is omitted, so adding the field
			// changed no existing key, while any non-zero value encodes and
			// keys a distinct configuration. Injectivity holds because the
			// model treats the zero value and no-field identically.
			if f.Tag.Get("canon") == "omitzero" && v.Field(i).IsZero() {
				continue
			}
			buf = append(buf, f.Name...)
			buf = append(buf, '=')
			var err error
			buf, err = appendCanonical(buf, path+"."+f.Name, v.Field(i))
			if err != nil {
				return nil, err
			}
			buf = append(buf, ';')
		}
		return append(buf, '}'), nil
	case reflect.Array, reflect.Slice:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return append(buf, "nil"...), nil
		}
		buf = append(buf, '[')
		buf = strconv.AppendInt(buf, int64(v.Len()), 10)
		buf = append(buf, ':')
		for i := 0; i < v.Len(); i++ {
			var err error
			buf, err = appendCanonical(buf, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
			if err != nil {
				return nil, err
			}
			buf = append(buf, ';')
		}
		return append(buf, ']'), nil
	case reflect.Map:
		if v.IsNil() {
			return append(buf, "nil"...), nil
		}
		keys := v.MapKeys()
		enc := make([]struct {
			k string
			v reflect.Value
		}, len(keys))
		for i, k := range keys {
			kb, err := appendCanonical(nil, path+".key", k)
			if err != nil {
				return nil, err
			}
			enc[i].k, enc[i].v = string(kb), v.MapIndex(k)
		}
		sort.Slice(enc, func(i, j int) bool { return enc[i].k < enc[j].k })
		buf = append(buf, 'm', '[')
		buf = strconv.AppendInt(buf, int64(len(enc)), 10)
		buf = append(buf, ':')
		for _, e := range enc {
			buf = append(buf, e.k...)
			buf = append(buf, '=')
			var err error
			buf, err = appendCanonical(buf, path+"[key]", e.v)
			if err != nil {
				return nil, err
			}
			buf = append(buf, ';')
		}
		return append(buf, ']'), nil
	case reflect.Pointer:
		if v.IsNil() {
			return append(buf, "nil"...), nil
		}
		buf = append(buf, '*')
		return appendCanonical(buf, path, v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			return append(buf, "nil"...), nil
		}
		return nil, badField(path, "interface-typed values cannot be canonicalized")
	default:
		return nil, badField(path, fmt.Sprintf("%s values cannot be canonicalized", v.Kind()))
	}
}
