package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/faultinject"
	"perfstacks/internal/runner"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

// materialize renders n generated uops into a slice so the same stream can
// be replayed exactly — whole or as a clean prefix.
func materialize(t *testing.T, name string, n int) []trace.Uop {
	t.Helper()
	p, ok := workload.SPECProfile(name)
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	g := workload.NewGenerator(p)
	uops := make([]trace.Uop, 0, n)
	for len(uops) < n {
		u, ok := g.Next()
		if !ok {
			t.Fatal("generator ended early")
		}
		uops = append(uops, u)
	}
	return uops
}

// stripErr clears the fields that legitimately differ between a faulted run
// and its clean-prefix twin, leaving only the accounting to compare.
func stripErr(r Result) Result {
	r.Err = nil
	r.Truncated = false
	return r
}

// The central robustness property (ISSUE 4): for every wrong-path scheme ×
// skip on/off, a mid-trace fault must (a) surface as Result.Err != nil and
// (b) leave accounting identical to a clean run over the pre-fault prefix —
// partial data is flagged, never silently different.
func TestFaultMidTracePrefixProperty(t *testing.T) {
	const total, faultAt = 40_000, 23_117
	uops := materialize(t, "mcf", total)
	m := config.BDW()

	schemes := []core.WrongPathScheme{
		core.WrongPathOracle, core.WrongPathSimple, core.WrongPathSpeculative,
	}
	for _, scheme := range schemes {
		for _, noSkip := range []bool{false, true} {
			name := fmt.Sprintf("%v/noskip=%v", scheme, noSkip)
			t.Run(name, func(t *testing.T) {
				opts := Options{CPI: true, FLOPS: true, Scheme: scheme, NoSkip: noSkip}

				faulted := Run(m, faultinject.FailAfter(trace.NewSlice(uops), faultAt, nil), opts)
				if faulted.Err == nil {
					t.Fatal("mid-trace fault produced a nil Result.Err")
				}
				if !errors.Is(faulted.Err, faultinject.ErrInjected) {
					t.Fatalf("Err = %v, want the injected fault in the chain", faulted.Err)
				}
				if faulted.Truncated {
					t.Fatal("an injected stream fault is not a torn file; Truncated must stay false")
				}

				clean := Run(m, trace.NewSlice(uops[:faultAt]), opts)
				if clean.Err != nil {
					t.Fatalf("clean prefix run errored: %v", clean.Err)
				}

				if !reflect.DeepEqual(stripErr(faulted), stripErr(clean)) {
					t.Errorf("accounting diverges from the clean prefix run:\nfaulted: %+v\nclean:   %+v",
						stripErr(faulted), stripErr(clean))
				}
			})
		}
	}
}

// A fault at uop 0 still yields a well-formed (all-zero) result plus an
// error — the degenerate end of the prefix property.
func TestFaultAtStart(t *testing.T) {
	m := config.BDW()
	res := Run(m, faultinject.FailAfter(trace.NewSlice(nil), 0, nil), Default())
	if res.Err == nil {
		t.Fatal("want an error from an immediately-faulting trace")
	}
	if res.Stats.Committed != 0 {
		t.Fatalf("committed %d uops from a dead trace", res.Stats.Committed)
	}
}

// A torn trace file surfaces as Err + Truncated through the whole stack:
// bytes → FileReader → batched frontend → Result.
func TestTornFileSetsTruncated(t *testing.T) {
	uops := materialize(t, "mcf", 500)
	data := encodeTrace(t, uops)
	torn := data[:len(data)-13] // cut mid-record

	fr, err := trace.NewFileReader(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(config.BDW(), fr, Default())
	if res.Err == nil || !res.Truncated {
		t.Fatalf("torn file: Err=%v Truncated=%v, want error with Truncated set", res.Err, res.Truncated)
	}
	if !errors.Is(res.Err, trace.ErrTruncated) {
		t.Fatalf("Err = %v, want trace.ErrTruncated in the chain", res.Err)
	}
}

// Cancellation mid-run yields ErrCanceled, and stats cover only the executed
// prefix.
func TestCancellationSetsErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first poll: the run stops at the first check
	opts := Default()
	opts.Context = ctx
	res := Run(config.BDW(), trace.NewLimit(workload.NewGenerator(mustProf(t, "mcf")), 200_000), opts)
	if !errors.Is(res.Err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	if res.Truncated {
		t.Fatal("cancellation is not truncation")
	}
}

func TestSMPFaultPinsCore(t *testing.T) {
	uops := materialize(t, "mcf", 30_000)
	const n, faultCore = 2, 1
	res := RunSMP(config.BDW(), n, func(tid int) trace.Reader {
		if tid == faultCore {
			return faultinject.FailAfter(trace.NewSlice(uops), 10_000, nil)
		}
		return trace.NewSlice(uops)
	}, Options{CPI: true})
	if res.Err == nil {
		t.Fatal("SMP run with one faulted thread must report an error")
	}
	if res.PerCoreErr[0] != nil {
		t.Fatalf("healthy core 0 reported %v", res.PerCoreErr[0])
	}
	if !errors.Is(res.PerCoreErr[faultCore], faultinject.ErrInjected) {
		t.Fatalf("core %d error = %v", faultCore, res.PerCoreErr[faultCore])
	}
}

// Acceptance shape (ISSUE 4): a 32-job sweep with one poisoned trace ends
// with exactly one JobError while every other configuration completes.
func TestPoisonedSweepIsolatesFailure(t *testing.T) {
	uops := materialize(t, "mcf", 20_000)
	m := config.BDW()
	const jobs, poisoned = 32, 17
	results := make([]Result, jobs)
	failed := runner.Run(context.Background(), 4, jobs, func(_ context.Context, i int) error {
		var tr trace.Reader = trace.NewSlice(uops)
		if i == poisoned {
			tr = faultinject.FailAfter(trace.NewSlice(uops), 5_000, nil)
		}
		results[i] = Run(m, tr, Default())
		if results[i].Err != nil {
			return results[i].Err
		}
		return nil
	})
	if len(failed) != 1 || failed[0].Index != poisoned {
		t.Fatalf("failures = %v, want exactly job %d", failed, poisoned)
	}
	if !errors.Is(failed[0].Err, faultinject.ErrInjected) {
		t.Fatalf("failure cause = %v", failed[0].Err)
	}
	for i, r := range results {
		if i == poisoned {
			continue
		}
		if r.Err != nil || r.Stats.Committed == 0 {
			t.Fatalf("healthy job %d: err=%v committed=%d", i, r.Err, r.Stats.Committed)
		}
	}
}

func mustProf(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.SPECProfile(name)
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	return p
}

// encodeTrace renders uops to the binary format.
func encodeTrace(t *testing.T, uops []trace.Uop) []byte {
	t.Helper()
	var buf writerBuf
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range uops {
		if err := w.Write(&uops[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.b
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
