package sim

import (
	"math"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/cpu"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func mcfTrace(n uint64) trace.Reader {
	p, _ := workload.SPECProfile("mcf")
	return trace.NewLimit(workload.NewGenerator(p), n)
}

func TestRunProducesStacks(t *testing.T) {
	res := Run(config.BDW(), mcfTrace(30000), Default())
	if res.Stacks == nil {
		t.Fatal("CPI stacks requested but missing")
	}
	if res.Stats.Committed != 30000 {
		t.Fatalf("committed %d, want 30000", res.Stats.Committed)
	}
	for _, st := range core.Stages() {
		s := res.Stacks.Stack(st)
		if math.Abs(s.Sum()-float64(s.Cycles)) > 1e-6*float64(s.Cycles)+1e-3 {
			t.Errorf("%s stack sum %.3f != cycles %d", st, s.Sum(), s.Cycles)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(config.KNL(), mcfTrace(20000), Default())
	b := Run(config.KNL(), mcfTrace(20000), Default())
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Stats.Cycles, b.Stats.Cycles)
	}
	for _, st := range core.Stages() {
		for c := core.Component(0); c < core.NumComponents; c++ {
			if a.Stacks.Stack(st).Comp[c] != b.Stacks.Stack(st).Comp[c] {
				t.Fatalf("%s %s differs across identical runs", st, c)
			}
		}
	}
}

func TestWarmupShrinksMeasuredWindow(t *testing.T) {
	opts := Default()
	opts.WarmupUops = 10000
	res := Run(config.BDW(), mcfTrace(30000), opts)
	insts := res.Stacks.Stack(core.StageDispatch).Instructions
	if insts >= 25000 || insts == 0 {
		t.Fatalf("measured instructions = %d, want ~20000 after warm-up", insts)
	}
}

func TestFLOPSCollection(t *testing.T) {
	m := config.KNL()
	g := workload.NewGemm(workload.StyleKNL, workload.GemmTrain()[2], m.Core.VectorLanes, 1, 0)
	res := Run(m, trace.NewLimit(g, 30000), Options{CPI: true, FLOPS: true})
	if res.FLOPS.Cycles == 0 {
		t.Fatal("FLOPS stack not measured")
	}
	if res.FLOPS.Comp[core.FBase] <= 0 {
		t.Fatal("GEMM should accumulate FLOPS base cycles")
	}
	if math.Abs(res.FLOPS.Sum()-float64(res.FLOPS.Cycles)) > 1e-6*float64(res.FLOPS.Cycles)+1e-3 {
		t.Fatalf("FLOPS stack sum %.3f != cycles %d", res.FLOPS.Sum(), res.FLOPS.Cycles)
	}
}

func TestBpredStatsReported(t *testing.T) {
	res := Run(config.BDW(), mcfTrace(30000), Default())
	if res.Bpred.Branches == 0 {
		t.Fatal("branch statistics missing")
	}
}

func TestPerfectBpredMachineUsesPerfectPredictor(t *testing.T) {
	m := config.BDW().Apply(config.Idealize{PerfectBpred: true})
	res := Run(m, mcfTrace(30000), Default())
	if res.Bpred.Branches != 0 {
		t.Fatal("perfect predictor should leave tournament stats empty")
	}
	if res.Stats.Mispredicts != 0 {
		t.Fatal("perfect bpred must not mispredict")
	}
}

func TestRunSMPAggregates(t *testing.T) {
	m := config.SKX()
	opts := Options{CPI: true, FLOPS: true}
	res := RunSMP(m, 3, func(tid int) trace.Reader {
		k := workload.NewConv(workload.StyleSKX, workload.ConvTrain()[6],
			workload.ConvFwd, m.Core.VectorLanes, uint64(tid)+1, 4000)
		return trace.NewLimit(k, 20000)
	}, opts)
	if len(res.PerCore) != 3 {
		t.Fatalf("per-core stats = %d, want 3", len(res.PerCore))
	}
	for i, s := range res.PerCore {
		if s.Committed != 20000 {
			t.Fatalf("core %d committed %d, want 20000", i, s.Committed)
		}
	}
	if res.Stacks == nil || res.Stacks.Stack(core.StageIssue).Cycles == 0 {
		t.Fatal("aggregated stacks missing")
	}
	if res.TotalFLOPs() == 0 {
		t.Fatal("no FLOPs recorded")
	}
}

func TestRunSMPBarriersProduceUnsched(t *testing.T) {
	m := config.SKX()
	res := RunSMP(m, 2, func(tid int) trace.Reader {
		k := workload.NewConv(workload.StyleSKX, workload.ConvTrain()[6],
			workload.ConvFwd, m.Core.VectorLanes, uint64(tid)+1, 3000)
		k.SetExtraOverhead(tid * 3) // skewed paces force barrier waits
		return trace.NewLimit(k, 20000)
	}, Options{CPI: true})
	uns := res.Stacks.Stack(core.StageIssue).Comp[core.CompUnsched]
	if uns <= 0 {
		t.Fatal("skewed threads at barriers should accumulate Unsched cycles")
	}
}

func TestWrongPathSynthOption(t *testing.T) {
	p, _ := workload.SPECProfile("deepsjeng")
	opts := Options{CPI: true, Scheme: core.WrongPathSimple, WrongPath: cpu.WrongPathSynth}
	res := Run(config.BDW(), trace.NewLimit(workload.NewGenerator(p), 30000), opts)
	if res.Stats.WrongPathUops == 0 {
		t.Fatal("synth wrong-path mode should produce wrong-path uops")
	}
	if res.Stats.Committed != 30000 {
		t.Fatalf("committed %d, want 30000", res.Stats.Committed)
	}
}

func TestCPIOfPrefersMeasuredWindow(t *testing.T) {
	opts := Default()
	opts.WarmupUops = 10000
	res := Run(config.BDW(), mcfTrace(30000), opts)
	whole := res.Stats.CPI()
	measured := res.CPIOf()
	if measured == whole {
		t.Skip("warm-up CPI happened to equal steady state")
	}
	if measured <= 0 {
		t.Fatal("measured CPI should be positive")
	}
}

func TestFetchStackBracketsDispatch(t *testing.T) {
	opts := Default()
	opts.Fetch = true
	opts.WarmupUops = 10000
	res := Run(config.BDW(), mcfTrace(60000), opts)
	if res.Fetch.Cycles == 0 {
		t.Fatal("fetch stack not measured")
	}
	// The fetch stack accounts frontend penalties at least as early as the
	// dispatch stack: fetch bpred >= dispatch bpred (§III-A ordering logic
	// extended one stage earlier).
	fb := res.Fetch.CPI(core.CompBpred)
	db := res.Stacks.Stack(core.StageDispatch).CPI(core.CompBpred)
	if fb+0.02 < db {
		t.Fatalf("fetch bpred %.3f below dispatch %.3f", fb, db)
	}
	// Total CPI agrees across all stacks.
	if d := res.Fetch.TotalCPI() - res.Stacks.Stack(core.StageCommit).TotalCPI(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("fetch total CPI diverges by %v", d)
	}
}

func TestStructuralAndMemDepthOptions(t *testing.T) {
	opts := Default()
	opts.MemDepth = true
	opts.Structural = true
	res := Run(config.BDW(), mcfTrace(40000), opts)
	if res.MemDepth.Cycles == 0 || res.Structural.Cycles == 0 {
		t.Fatal("side accountants not run")
	}
	// The memory breakdown must not exceed the commit D-cache component.
	commitDC := res.Stacks.Stack(core.StageCommit).Comp[core.CompDCache]
	if res.MemDepth.CommitTotal() > commitDC+1e-6 {
		t.Fatalf("breakdown %.1f exceeds commit Dcache %.1f", res.MemDepth.CommitTotal(), commitDC)
	}
}
