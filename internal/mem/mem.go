// Package mem models main memory as a fixed-latency, bandwidth-limited
// device. Bandwidth is expressed as a minimum cycle spacing between line
// transfers; when requests arrive faster than the spacing allows, they queue
// and their completion times slide out. This is the classic "scaled uncore"
// memory model: the paper divides socket memory bandwidth by the core count
// to mimic a fully loaded processor, which here simply raises the per-line
// spacing.
//
// The device may be split into a power-of-two number of channels, each with
// its own bandwidth cursor and statistics. Callers that address-slice the
// levels above (cache.SlicedLevel) route each line to a channel by the same
// hash, so disjoint slices never share queueing state. Aggregate bandwidth
// is preserved by construction: each of n channels spaces lines
// CyclesPerLine*n apart, so together they sustain one line per CyclesPerLine.
package mem

import (
	"fmt"
	"sync/atomic"

	"perfstacks/internal/invariant"
)

// Request describes one line-sized memory access.
type Request struct {
	// Line is the line-aligned address.
	Line uint64
	// At is the cycle the request reaches memory.
	At int64
	// Write marks writeback traffic.
	Write bool
	// Prefetch marks hardware prefetches (accounted separately in stats).
	Prefetch bool
	// Channel selects the channel serving this line: 0 on a single-channel
	// device, the address-hash channel index otherwise. The caller routes —
	// memory has no opinion on the hash — so the cache layer and the memory
	// layer agree on slice ownership by construction.
	Channel int
}

// Config sizes the memory model.
type Config struct {
	// Latency is the idle (unloaded) access latency in core cycles.
	Latency int64
	// CyclesPerLine is the minimum spacing between line transfers, i.e. the
	// inverse bandwidth in core cycles per cache line. On a multi-channel
	// device this is the aggregate spacing; each channel runs n times slower.
	CyclesPerLine int64
	// MaxQueue bounds how far the bandwidth queue may run ahead; requests
	// that would exceed it are still served but the queue depth statistic
	// saturates. Zero means unbounded.
	MaxQueue int64
}

// Stats counts memory traffic.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Prefetches uint64
	// StallCycles accumulates queueing delay beyond the idle latency.
	StallCycles int64
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Prefetches += o.Prefetches
	s.StallCycles += o.StallCycles
}

// Memory is the DRAM model. It is not safe for unsynchronized concurrent
// use: the sequential SMP harness steps cores round-robin on one goroutine,
// and the parallel harness serializes accesses through the cache package's
// epoch gate, which also keeps them in ascending epoch order (SetEpochFloor
// lets the simdebug build assert that). After a cancellation the gate only
// guarantees per-slice exclusion, which suffices because each channel is
// owned by exactly one slice.
type Memory struct {
	cfg     Config
	spacing int64
	// nextSlot is the per-channel bandwidth cursor.
	nextSlot []int64
	// epochFloor is the cycle of the current epoch grant: every request must
	// arrive at or after it. Only checked under the simdebug build tag.
	// Atomic because the cancellation path resets it concurrently with
	// lingering pre-cancel accesses.
	epochFloor atomic.Int64
	// stats is per-channel so post-cancel slice-parallel drains never share a
	// counter.
	stats []Stats
}

// New builds a single-channel Memory from cfg. A zero CyclesPerLine disables
// the bandwidth limit.
func New(cfg Config) *Memory { return NewChannels(cfg, 1) }

// NewChannels builds a Memory with n independent channels. n must be a power
// of two >= 1 (the routing hash masks with n-1).
func NewChannels(cfg Config, n int) *Memory {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("mem: channel count %d is not a power of two", n))
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 1
	}
	return &Memory{
		cfg:      cfg,
		spacing:  cfg.CyclesPerLine * int64(n),
		nextSlot: make([]int64, n),
		stats:    make([]Stats, n),
	}
}

// Config returns the active configuration.
func (m *Memory) Config() Config { return m.cfg }

// Channels returns the channel count.
func (m *Memory) Channels() int { return len(m.nextSlot) }

// Stats aggregates traffic counters over all channels.
func (m *Memory) Stats() Stats {
	var t Stats
	for i := range m.stats {
		t.add(m.stats[i])
	}
	return t
}

// ChannelStats returns channel i's counters.
func (m *Memory) ChannelStats(i int) Stats { return m.stats[i] }

// SetEpochFloor records the cycle of the epoch now draining into memory.
// Requests under one grant all carry At >= the grant cycle (each hop down
// the hierarchy only adds latency) and grants arrive in nondecreasing cycle
// order, so the floor lets the simdebug build assert that no access slipped
// past the epoch gate out of order. The parallel SMP harness calls it via
// the gate's grant hook; sequential runs never set it.
func (m *Memory) SetEpochFloor(cycle int64) { m.epochFloor.Store(cycle) }

// Access serves one request and returns the cycle its data is available.
func (m *Memory) Access(req Request) int64 {
	if invariant.Enabled {
		invariant.Assertf(req.At >= m.epochFloor.Load(),
			"mem: request at cycle %d arrived under epoch floor %d", req.At, m.epochFloor.Load())
		invariant.Assertf(req.Channel >= 0 && req.Channel < len(m.nextSlot),
			"mem: channel %d out of range [0,%d)", req.Channel, len(m.nextSlot))
	}
	st := &m.stats[req.Channel]
	switch {
	case req.Write:
		st.Writes++
	case req.Prefetch:
		st.Prefetches++
	default:
		st.Reads++
	}
	start := req.At
	if m.spacing > 0 {
		if next := m.nextSlot[req.Channel]; next > start {
			st.StallCycles += next - start
			start = next
		}
		m.nextSlot[req.Channel] = start + m.spacing
	}
	return start + m.cfg.Latency
}

// Reset clears queue state and statistics.
func (m *Memory) Reset() {
	for i := range m.nextSlot {
		m.nextSlot[i] = 0
		m.stats[i] = Stats{}
	}
	m.epochFloor.Store(0)
}
