// Package mem models main memory as a fixed-latency, bandwidth-limited
// device. Bandwidth is expressed as a minimum cycle spacing between line
// transfers; when requests arrive faster than the spacing allows, they queue
// and their completion times slide out. This is the classic "scaled uncore"
// memory model: the paper divides socket memory bandwidth by the core count
// to mimic a fully loaded processor, which here simply raises the per-line
// spacing.
package mem

import "perfstacks/internal/invariant"

// Request describes one line-sized memory access.
type Request struct {
	// Line is the line-aligned address.
	Line uint64
	// At is the cycle the request reaches memory.
	At int64
	// Write marks writeback traffic.
	Write bool
	// Prefetch marks hardware prefetches (accounted separately in stats).
	Prefetch bool
}

// Config sizes the memory model.
type Config struct {
	// Latency is the idle (unloaded) access latency in core cycles.
	Latency int64
	// CyclesPerLine is the minimum spacing between line transfers, i.e. the
	// inverse bandwidth in core cycles per cache line.
	CyclesPerLine int64
	// MaxQueue bounds how far the bandwidth queue may run ahead; requests
	// that would exceed it are still served but the queue depth statistic
	// saturates. Zero means unbounded.
	MaxQueue int64
}

// Stats counts memory traffic.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Prefetches uint64
	// StallCycles accumulates queueing delay beyond the idle latency.
	StallCycles int64
}

// Memory is the DRAM model. It is not safe for unsynchronized concurrent
// use: the sequential SMP harness steps cores round-robin on one goroutine,
// and the parallel harness serializes accesses through the cache package's
// epoch gate, which also keeps them in ascending epoch order (SetEpochFloor
// lets the simdebug build assert that).
type Memory struct {
	cfg      Config
	nextSlot int64
	// epochFloor is the cycle of the current epoch grant: every request must
	// arrive at or after it. Only checked under the simdebug build tag.
	epochFloor int64
	// Stats is exported for experiment reporting.
	Stats Stats
}

// New builds a Memory from cfg. A zero CyclesPerLine disables the bandwidth
// limit.
func New(cfg Config) *Memory {
	if cfg.Latency <= 0 {
		cfg.Latency = 1
	}
	return &Memory{cfg: cfg}
}

// Config returns the active configuration.
func (m *Memory) Config() Config { return m.cfg }

// SetEpochFloor records the cycle of the epoch now draining into memory.
// Requests under one grant all carry At >= the grant cycle (each hop down
// the hierarchy only adds latency) and grants arrive in nondecreasing cycle
// order, so the floor lets the simdebug build assert that no access slipped
// past the epoch gate out of order. The parallel SMP harness calls it via
// the gate's grant hook; sequential runs never set it.
func (m *Memory) SetEpochFloor(cycle int64) { m.epochFloor = cycle }

// Access serves one request and returns the cycle its data is available.
func (m *Memory) Access(req Request) int64 {
	if invariant.Enabled {
		invariant.Assertf(req.At >= m.epochFloor,
			"mem: request at cycle %d arrived under epoch floor %d", req.At, m.epochFloor)
	}
	switch {
	case req.Write:
		m.Stats.Writes++
	case req.Prefetch:
		m.Stats.Prefetches++
	default:
		m.Stats.Reads++
	}
	start := req.At
	if m.cfg.CyclesPerLine > 0 {
		if m.nextSlot > start {
			m.Stats.StallCycles += m.nextSlot - start
			start = m.nextSlot
		}
		m.nextSlot = start + m.cfg.CyclesPerLine
	}
	return start + m.cfg.Latency
}

// Reset clears queue state and statistics.
func (m *Memory) Reset() {
	m.nextSlot = 0
	m.epochFloor = 0
	m.Stats = Stats{}
}
