package mem

import (
	"testing"
	"testing/quick"
)

func TestIdleLatency(t *testing.T) {
	m := New(Config{Latency: 100})
	if got := m.Access(Request{Line: 1, At: 50}); got != 150 {
		t.Fatalf("DoneAt = %d, want 150", got)
	}
}

func TestBandwidthSpacing(t *testing.T) {
	m := New(Config{Latency: 100, CyclesPerLine: 10})
	a := m.Access(Request{Line: 1, At: 0})
	b := m.Access(Request{Line: 2, At: 0})
	c := m.Access(Request{Line: 3, At: 0})
	if a != 100 || b != 110 || c != 120 {
		t.Fatalf("DoneAt = %d,%d,%d; want 100,110,120", a, b, c)
	}
	if m.Stats().StallCycles != 10+20 {
		t.Fatalf("stall cycles = %d, want 30", m.Stats().StallCycles)
	}
}

func TestBandwidthIdleGapsDoNotAccumulate(t *testing.T) {
	m := New(Config{Latency: 100, CyclesPerLine: 10})
	m.Access(Request{Line: 1, At: 0})
	// A request long after the previous one pays no queueing.
	if got := m.Access(Request{Line: 2, At: 1000}); got != 1100 {
		t.Fatalf("DoneAt = %d, want 1100", got)
	}
}

func TestUnlimitedBandwidth(t *testing.T) {
	m := New(Config{Latency: 50})
	a := m.Access(Request{Line: 1, At: 0})
	b := m.Access(Request{Line: 2, At: 0})
	if a != 50 || b != 50 {
		t.Fatalf("unlimited bandwidth should not space requests: %d,%d", a, b)
	}
}

func TestTrafficStats(t *testing.T) {
	m := New(Config{Latency: 10})
	m.Access(Request{Line: 1, At: 0})
	m.Access(Request{Line: 2, At: 0, Write: true})
	m.Access(Request{Line: 3, At: 0, Prefetch: true})
	if m.Stats().Reads != 1 || m.Stats().Writes != 1 || m.Stats().Prefetches != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestReset(t *testing.T) {
	m := New(Config{Latency: 10, CyclesPerLine: 5})
	m.Access(Request{Line: 1, At: 0})
	m.Reset()
	if m.Stats().Reads != 0 {
		t.Fatal("Reset should clear stats")
	}
	if got := m.Access(Request{Line: 2, At: 0}); got != 10 {
		t.Fatalf("Reset should clear the bandwidth queue: DoneAt = %d", got)
	}
}

func TestZeroLatencyClamped(t *testing.T) {
	m := New(Config{})
	if got := m.Access(Request{Line: 1, At: 7}); got != 8 {
		t.Fatalf("zero-config access DoneAt = %d, want 8 (latency clamps to 1)", got)
	}
}

// Property: completion is never before request time plus latency, and
// consecutive same-time requests complete in non-decreasing order.
func TestMonotoneCompletionProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		m := New(Config{Latency: 20, CyclesPerLine: 3})
		at := int64(0)
		last := int64(0)
		for i, g := range gaps {
			at += int64(g % 8)
			done := m.Access(Request{Line: uint64(i), At: at})
			if done < at+20 {
				return false
			}
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChannelsIndependentCursors(t *testing.T) {
	// Two channels: aggregate spacing 10 means each channel spaces lines 20
	// apart, so back-to-back requests on different channels never queue on
	// each other while same-channel requests do.
	m := NewChannels(Config{Latency: 50, CyclesPerLine: 10}, 2)
	if got := m.Access(Request{Line: 1, At: 0, Channel: 0}); got != 50 {
		t.Fatalf("first ch0 access done at %d, want 50", got)
	}
	if got := m.Access(Request{Line: 2, At: 0, Channel: 1}); got != 50 {
		t.Fatalf("first ch1 access must not queue behind ch0: done at %d, want 50", got)
	}
	if got := m.Access(Request{Line: 3, At: 0, Channel: 0}); got != 70 {
		t.Fatalf("second ch0 access should wait the per-channel spacing: done at %d, want 70", got)
	}
	if st := m.Stats(); st.StallCycles != 20 {
		t.Fatalf("stall cycles = %d, want 20", st.StallCycles)
	}
}

func TestChannelsAggregateStats(t *testing.T) {
	m := NewChannels(Config{Latency: 10}, 4)
	for ch := 0; ch < 4; ch++ {
		m.Access(Request{Line: uint64(ch), At: 0, Channel: ch})
		m.Access(Request{Line: uint64(ch), At: 0, Channel: ch, Write: true})
	}
	if st := m.Stats(); st.Reads != 4 || st.Writes != 4 {
		t.Fatalf("aggregate stats = %+v, want 4 reads and 4 writes", st)
	}
	if st := m.ChannelStats(2); st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("channel 2 stats = %+v, want 1 read and 1 write", st)
	}
	m.Reset()
	if st := m.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestChannelsPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChannels(3) should panic")
		}
	}()
	NewChannels(Config{Latency: 10}, 3)
}
