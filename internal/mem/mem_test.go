package mem

import (
	"testing"
	"testing/quick"
)

func TestIdleLatency(t *testing.T) {
	m := New(Config{Latency: 100})
	if got := m.Access(Request{Line: 1, At: 50}); got != 150 {
		t.Fatalf("DoneAt = %d, want 150", got)
	}
}

func TestBandwidthSpacing(t *testing.T) {
	m := New(Config{Latency: 100, CyclesPerLine: 10})
	a := m.Access(Request{Line: 1, At: 0})
	b := m.Access(Request{Line: 2, At: 0})
	c := m.Access(Request{Line: 3, At: 0})
	if a != 100 || b != 110 || c != 120 {
		t.Fatalf("DoneAt = %d,%d,%d; want 100,110,120", a, b, c)
	}
	if m.Stats.StallCycles != 10+20 {
		t.Fatalf("stall cycles = %d, want 30", m.Stats.StallCycles)
	}
}

func TestBandwidthIdleGapsDoNotAccumulate(t *testing.T) {
	m := New(Config{Latency: 100, CyclesPerLine: 10})
	m.Access(Request{Line: 1, At: 0})
	// A request long after the previous one pays no queueing.
	if got := m.Access(Request{Line: 2, At: 1000}); got != 1100 {
		t.Fatalf("DoneAt = %d, want 1100", got)
	}
}

func TestUnlimitedBandwidth(t *testing.T) {
	m := New(Config{Latency: 50})
	a := m.Access(Request{Line: 1, At: 0})
	b := m.Access(Request{Line: 2, At: 0})
	if a != 50 || b != 50 {
		t.Fatalf("unlimited bandwidth should not space requests: %d,%d", a, b)
	}
}

func TestTrafficStats(t *testing.T) {
	m := New(Config{Latency: 10})
	m.Access(Request{Line: 1, At: 0})
	m.Access(Request{Line: 2, At: 0, Write: true})
	m.Access(Request{Line: 3, At: 0, Prefetch: true})
	if m.Stats.Reads != 1 || m.Stats.Writes != 1 || m.Stats.Prefetches != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestReset(t *testing.T) {
	m := New(Config{Latency: 10, CyclesPerLine: 5})
	m.Access(Request{Line: 1, At: 0})
	m.Reset()
	if m.Stats.Reads != 0 {
		t.Fatal("Reset should clear stats")
	}
	if got := m.Access(Request{Line: 2, At: 0}); got != 10 {
		t.Fatalf("Reset should clear the bandwidth queue: DoneAt = %d", got)
	}
}

func TestZeroLatencyClamped(t *testing.T) {
	m := New(Config{})
	if got := m.Access(Request{Line: 1, At: 7}); got != 8 {
		t.Fatalf("zero-config access DoneAt = %d, want 8 (latency clamps to 1)", got)
	}
}

// Property: completion is never before request time plus latency, and
// consecutive same-time requests complete in non-decreasing order.
func TestMonotoneCompletionProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		m := New(Config{Latency: 20, CyclesPerLine: 3})
		at := int64(0)
		last := int64(0)
		for i, g := range gaps {
			at += int64(g % 8)
			done := m.Access(Request{Line: uint64(i), At: at})
			if done < at+20 {
				return false
			}
			if done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
