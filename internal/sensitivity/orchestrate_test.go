package sensitivity

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/runner"
	"perfstacks/internal/sim"
)

// testPlan builds a small, fast plan over the branch predictor parameters.
func testPlan(t *testing.T, po PlanOptions, uops uint64) *Plan {
	t.Helper()
	opts := sim.Options{WarmupUops: uops / 3}
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), uops, opts, po)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGoldenDeterministicReport(t *testing.T) {
	run := func() []byte {
		t.Helper()
		p := testPlan(t, PlanOptions{Params: []string{"bpred"}}, 9_000)
		orch := &Orchestrator{Run: LocalRunner(nil, nil), Concurrency: 4}
		rep, err := orch.Execute(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("identical plans produced different reports:\n%s\n---\n%s", a, b)
	}

	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != ReportSchemaVersion {
		t.Fatalf("report version %q, want %q", rep.Version, ReportSchemaVersion)
	}
	if rep.BaselineCPI <= 0 {
		t.Fatalf("baseline CPI %v, want > 0", rep.BaselineCPI)
	}
	for i := 1; i < len(rep.Params); i++ {
		if rep.Params[i-1].Score < rep.Params[i].Score {
			t.Fatalf("ranking not sorted by score: %v before %v", rep.Params[i-1], rep.Params[i])
		}
	}
	if rep.Summary.Cells != len(rep.Cells) || rep.Summary.Simulated != rep.Summary.Cells {
		t.Fatalf("cache-less run summary wrong: %+v", rep.Summary)
	}
	// The bpred group carries exactly one idealized endpoint (perfect bpred).
	if len(rep.Bounds) != 1 || rep.Bounds[0].Component != "Bpred" {
		t.Fatalf("bounds = %+v, want exactly the Bpred cross-check", rep.Bounds)
	}
}

// TestIdealGainNonNegative is the property test: removing work via one of
// the paper's idealizations must never make the machine slower. The check
// allows 0.1% of the baseline CPI as slack — idealizing a unit reorders
// issue in the detailed model, and the perturbed schedule can cost a
// handful of cycles even though the idealized machine does strictly less
// work (e.g. single-cycle ALUs shift which uops compete for a port and a
// load issues a cycle later).
func TestIdealGainNonNegative(t *testing.T) {
	for _, prof := range []string{"mcf", "gcc-1"} {
		p, err := NewPlan(config.BDW(), mustProfile(t, prof), 20_000, sim.Options{WarmupUops: 5_000},
			PlanOptions{Params: []string{"l1i_size", "l1d_size", "bpred_size", "alu_latency"}, Variants: []float64{2}})
		if err != nil {
			t.Fatal(err)
		}
		orch := &Orchestrator{Run: LocalRunner(nil, nil)}
		rep, err := orch.Execute(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Bounds) != len(IdealComponents()) {
			t.Fatalf("%s: %d bound checks, want %d", prof, len(rep.Bounds), len(IdealComponents()))
		}
		for _, c := range rep.Cells {
			if c.Kind != KindIdeal {
				continue
			}
			if gain := rep.BaselineCPI - c.CPI; gain < -rep.BaselineCPI/1000 {
				t.Errorf("%s: idealized endpoint %s/%s has negative gain %v (baseline %v, cell %v)",
					prof, c.Param, c.Variant, gain, rep.BaselineCPI, c.CPI)
			}
		}
	}
}

func TestOrchestratorCancellationMidFanout(t *testing.T) {
	p := testPlan(t, PlanOptions{}, 5_000)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	run := func(ctx context.Context, _ *Plan, _ Cell) (CellOutcome, error) {
		if started.Add(1) == 3 {
			cancel() // the "client" walks away while cells are in flight
		}
		<-ctx.Done()
		return CellOutcome{}, ctx.Err()
	}
	orch := &Orchestrator{Run: run, Concurrency: 4}
	rep, err := orch.Execute(ctx, p)
	if rep != nil {
		t.Fatal("canceled plan still produced a report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Far fewer cells ran than the plan holds: cancellation stopped the fan.
	if n := int(started.Load()); n >= len(p.Cells) {
		t.Fatalf("all %d cells started despite cancellation", n)
	}
}

func TestOrchestratorFirstErrorCancels(t *testing.T) {
	p := testPlan(t, PlanOptions{}, 5_000)
	boom := errors.New("boom")
	var calls atomic.Int32
	run := func(ctx context.Context, _ *Plan, cell Cell) (CellOutcome, error) {
		calls.Add(1)
		if cell.Kind == KindBaseline {
			return CellOutcome{}, boom
		}
		<-ctx.Done()
		return CellOutcome{}, ctx.Err()
	}
	orch := &Orchestrator{Run: run, Concurrency: 2}
	if _, err := orch.Execute(context.Background(), p); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the cell's error", err)
	}
	if n := int(calls.Load()); n >= len(p.Cells) {
		t.Fatalf("all %d cells ran despite an early error", n)
	}
}

// TestHundredCellPlanThroughPool is the acceptance path: a 100+-cell plan
// fanned through a real runner.Pool into the shared result cache, producing
// a ranked report with the three-stage bound cross-check; re-running the
// identical plan is served (>= 95%) from the cache.
func TestHundredCellPlanThroughPool(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of small simulations")
	}
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 2_000, sim.Options{},
		PlanOptions{Variants: []float64{0.25, 0.5, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) < 100 {
		t.Fatalf("plan has %d cells, want >= 100", len(p.Cells))
	}
	pool := runner.NewPool(runner.PoolOptions{})
	defer pool.Close()
	cache := resultcache.New(resultcache.NewMemory(256<<20), nil)

	var progress atomic.Int32
	orch := &Orchestrator{
		Run:    LocalRunner(pool, cache),
		OnCell: func(pr Progress) { progress.Add(1) },
	}
	rep, err := orch.Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if int(progress.Load()) != len(p.Cells) {
		t.Fatalf("OnCell saw %d cells, want %d", progress.Load(), len(p.Cells))
	}
	if len(rep.Params) == 0 || rep.BaselineCPI <= 0 {
		t.Fatalf("degenerate report: %+v", rep.Summary)
	}
	if len(rep.Bounds) != len(IdealComponents()) {
		t.Fatalf("%d bound cross-checks, want %d", len(rep.Bounds), len(IdealComponents()))
	}

	rep2, err := (&Orchestrator{Run: LocalRunner(pool, cache)}).Execute(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep2.Summary.FromCache*100, 95*rep2.Summary.Cells; got < want {
		t.Fatalf("re-run served %d/%d cells from cache, want >= 95%%",
			rep2.Summary.FromCache, rep2.Summary.Cells)
	}
	// Measurements (not provenance) are identical across runs.
	for i := range rep.Cells {
		if rep.Cells[i].CPI != rep2.Cells[i].CPI {
			t.Fatalf("cell %d CPI changed across cached re-run: %v vs %v",
				i, rep.Cells[i].CPI, rep2.Cells[i].CPI)
		}
	}
}

func TestBuildReportRejectsPartial(t *testing.T) {
	p := testPlan(t, PlanOptions{Params: []string{"bpred"}}, 5_000)
	outcomes := make([]CellOutcome, len(p.Cells))
	if _, err := BuildReport(p, outcomes); err == nil {
		t.Fatal("nil results must be rejected")
	}
	outcomes[0] = CellOutcome{Result: &sim.Result{Err: fmt.Errorf("torn trace")}, Source: SourceSim}
	if _, err := BuildReport(p, outcomes); err == nil {
		t.Fatal("partial results must be rejected")
	}
}
