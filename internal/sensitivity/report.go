package sensitivity

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"perfstacks/internal/sim"
	"perfstacks/internal/textplot"
)

// ReportSchemaVersion versions the report wire shape and the scoring math.
// It is part of the plan-level cache key, so bumping it invalidates every
// cached report without touching the per-cell simulation entries.
const ReportSchemaVersion = "sensitivity-report-v1"

// Cell sources: where a cell's result came from.
const (
	SourceSim       = "sim"       // simulated locally for this plan
	SourceCache     = "cache"     // served from the local result cache
	SourcePeer      = "peer"      // fetched from the owning ring peer
	SourceCoalesced = "coalesced" // rode another request's in-flight production
)

// CellOutcome is one cell's measured result and its provenance.
type CellOutcome struct {
	Result *sim.Result
	Source string
}

// CellResult is one cell's row in the report.
type CellResult struct {
	Param     string  `json:"param,omitempty"`
	Variant   string  `json:"variant"`
	Kind      string  `json:"kind"`
	Scale     float64 `json:"scale,omitempty"`
	Source    string  `json:"source"`
	CPI       float64 `json:"cpi"`
	Cycles    int64   `json:"cycles"`
	Committed uint64  `json:"committed"`
}

// ParamScore aggregates one parameter's cells into its sensitivity score.
// Gain is the CPI headroom the parameter's best variant buys (baseline CPI
// minus the minimum CPI over its cells — negative when every perturbation
// hurts); Loss is the exposure of its worst variant. Score is Gain
// normalized by the baseline CPI; the report ranks parameters by it, which
// is the bottleneck ranking: the knob whose improvement buys the most time.
type ParamScore struct {
	Param        string  `json:"param"`
	Group        string  `json:"group"`
	Cells        int     `json:"cells"`
	BestVariant  string  `json:"best_variant"`
	BestCPI      float64 `json:"best_cpi"`
	WorstVariant string  `json:"worst_variant"`
	WorstCPI     float64 `json:"worst_cpi"`
	Gain         float64 `json:"gain"`
	Loss         float64 `json:"loss"`
	Score        float64 `json:"score"`
}

// BoundCheck cross-checks one component's measured idealization gain
// against the multi-stage CPI stack's predicted bound [Lo, Hi] (the min and
// max of the component over the three accounting stages). Err is the
// distance to the nearest bound when the measurement falls outside (the
// paper's Figure 2 error metric), 0 when inside.
type BoundCheck struct {
	Component string  `json:"component"`
	Param     string  `json:"param"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Measured  float64 `json:"measured"`
	Inside    bool    `json:"inside"`
	Err       float64 `json:"err"`
}

// Summary counts how the plan's cells were satisfied.
type Summary struct {
	Cells     int `json:"cells"`
	Simulated int `json:"simulated"`
	FromCache int `json:"from_cache"`
	FromPeer  int `json:"from_peer"`
	Coalesced int `json:"coalesced"`
}

// Report is the finished sensitivity analysis. Field order (and the sorted
// rankings) are deterministic, so identical plans marshal to identical
// bytes — the property the plan-level cache relies on.
type Report struct {
	Version     string       `json:"version"`
	Machine     string       `json:"machine"`
	Workload    string       `json:"workload"`
	Uops        uint64       `json:"uops"`
	Warmup      uint64       `json:"warmup"`
	BaselineCPI float64      `json:"baseline_cpi"`
	Params      []ParamScore `json:"params"`
	Bounds      []BoundCheck `json:"bounds,omitempty"`
	Cells       []CellResult `json:"cells"`
	Summary     Summary      `json:"summary"`
}

// BuildReport folds the per-cell outcomes (parallel to p.Cells) into the
// ranked report. Every outcome must be complete: a partial plan is not a
// measurement.
func BuildReport(p *Plan, outcomes []CellOutcome) (*Report, error) {
	if len(outcomes) != len(p.Cells) {
		return nil, fmt.Errorf("sensitivity: %d outcomes for %d cells", len(outcomes), len(p.Cells))
	}
	for i, o := range outcomes {
		if o.Result == nil {
			return nil, fmt.Errorf("sensitivity: cell %s/%s has no result", p.Cells[i].Param, p.Cells[i].Variant)
		}
		if o.Result.Err != nil {
			return nil, fmt.Errorf("sensitivity: cell %s/%s: %w", p.Cells[i].Param, p.Cells[i].Variant, o.Result.Err)
		}
	}
	base := outcomes[0].Result
	r := &Report{
		Version:     ReportSchemaVersion,
		Machine:     p.Baseline.Name,
		Workload:    p.Profile.Name,
		Uops:        p.Uops,
		Warmup:      p.Opts.WarmupUops,
		BaselineCPI: base.CPIOf(),
		Cells:       make([]CellResult, len(p.Cells)),
		Summary:     Summary{Cells: len(p.Cells)},
	}

	scores := make(map[string]*ParamScore)
	groups := make(map[string]string)
	for _, par := range Parameters() {
		groups[par.Name] = par.Group
	}
	for i, o := range outcomes {
		cell := p.Cells[i]
		cpi := o.Result.CPIOf()
		r.Cells[i] = CellResult{
			Param: cell.Param, Variant: cell.Variant, Kind: cell.Kind,
			Scale: cell.Scale, Source: o.Source, CPI: cpi,
			Cycles: o.Result.Stats.Cycles, Committed: o.Result.Stats.Committed,
		}
		switch o.Source {
		case SourceCache:
			r.Summary.FromCache++
		case SourcePeer:
			r.Summary.FromPeer++
		case SourceCoalesced:
			r.Summary.Coalesced++
		default:
			r.Summary.Simulated++
		}
		if cell.Kind == KindBaseline {
			continue
		}
		sc := scores[cell.Param]
		if sc == nil {
			sc = &ParamScore{
				Param: cell.Param, Group: groups[cell.Param],
				BestVariant: cell.Variant, BestCPI: cpi,
				WorstVariant: cell.Variant, WorstCPI: cpi,
			}
			scores[cell.Param] = sc
		}
		sc.Cells++
		if cpi < sc.BestCPI {
			sc.BestCPI, sc.BestVariant = cpi, cell.Variant
		}
		if cpi > sc.WorstCPI {
			sc.WorstCPI, sc.WorstVariant = cpi, cell.Variant
		}
		if cell.Kind == KindIdeal {
			bc := BoundCheck{Component: cell.Component.String(), Param: cell.Param, Measured: r.BaselineCPI - cpi}
			// The baseline always carries stacks: NewPlan forces Opts.CPI.
			if base.Stacks != nil {
				bc.Lo, bc.Hi = base.Stacks.ComponentRange(cell.Component)
				bc.Inside, bc.Err = base.Stacks.Bounds(cell.Component, bc.Measured)
			}
			r.Bounds = append(r.Bounds, bc)
		}
	}
	for _, sc := range scores {
		sc.Gain = r.BaselineCPI - sc.BestCPI
		sc.Loss = sc.WorstCPI - r.BaselineCPI
		if r.BaselineCPI > 0 {
			sc.Score = sc.Gain / r.BaselineCPI
		}
		r.Params = append(r.Params, *sc)
	}
	sort.Slice(r.Params, func(i, j int) bool {
		if r.Params[i].Score != r.Params[j].Score {
			return r.Params[i].Score > r.Params[j].Score
		}
		return r.Params[i].Param < r.Params[j].Param
	})
	sort.Slice(r.Bounds, func(i, j int) bool {
		if r.Bounds[i].Component != r.Bounds[j].Component {
			return r.Bounds[i].Component < r.Bounds[j].Component
		}
		return r.Bounds[i].Param < r.Bounds[j].Param
	})
	return r, nil
}

// RenderText renders the human-readable report: the ranked parameter table,
// a tornado chart of gains and losses, and the bound cross-check. top
// truncates the ranking (<= 0 means all).
func (r *Report) RenderText(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sensitivity analysis: %s on %s (%d uops, %d warmup)\n",
		r.Workload, r.Machine, r.Uops, r.Warmup)
	fmt.Fprintf(&b, "baseline CPI %.4f; %d cells (%d simulated, %d cache, %d peer, %d coalesced)\n\n",
		r.BaselineCPI, r.Summary.Cells, r.Summary.Simulated, r.Summary.FromCache,
		r.Summary.FromPeer, r.Summary.Coalesced)

	params := r.Params
	if top > 0 && top < len(params) {
		params = params[:top]
	}
	tbl := textplot.NewTable("rank", "param", "group", "gain", "loss", "score", "best", "worst")
	for i, sc := range params {
		tbl.Rowf(i+1, sc.Param, sc.Group, sc.Gain, sc.Loss, sc.Score, sc.BestVariant, sc.WorstVariant)
	}
	b.WriteString(tbl.String())

	names := make([]string, len(params))
	gains := make([]float64, len(params))
	losses := make([]float64, len(params))
	for i, sc := range params {
		names[i] = sc.Param
		gains[i] = sc.Gain
		losses[i] = sc.Loss
	}
	b.WriteString("\nTornado (CPI gained when improved <|> CPI lost when degraded):\n")
	b.WriteString(textplot.Tornado(names, gains, losses, 28))

	if len(r.Bounds) > 0 {
		b.WriteString("\nStack-bound cross-check (measured idealization gain vs predicted range):\n")
		bt := textplot.NewTable("component", "param", "lo", "hi", "measured", "verdict")
		for _, bc := range r.Bounds {
			verdict := "inside"
			if !bc.Inside {
				verdict = fmt.Sprintf("OUTSIDE by %.4f", bc.Err)
			}
			bt.Rowf(bc.Component, bc.Param, bc.Lo, bc.Hi, bc.Measured, verdict)
		}
		b.WriteString(bt.String())
	}
	return b.String()
}

// WriteScoresCSV emits the ranked parameter scores as CSV.
func (r *Report) WriteScoresCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"param", "group", "cells", "baseline_cpi", "best_variant", "best_cpi", "worst_variant", "worst_cpi", "gain", "loss", "score"}); err != nil {
		return err
	}
	for _, sc := range r.Params {
		rec := []string{
			sc.Param, sc.Group, strconv.Itoa(sc.Cells),
			formatFloat(r.BaselineCPI),
			sc.BestVariant, formatFloat(sc.BestCPI),
			sc.WorstVariant, formatFloat(sc.WorstCPI),
			formatFloat(sc.Gain), formatFloat(sc.Loss), formatFloat(sc.Score),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCellsCSV emits every cell measurement as CSV (for external plotting).
func (r *Report) WriteCellsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"param", "variant", "kind", "scale", "source", "cpi", "cycles", "committed"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		rec := []string{
			c.Param, c.Variant, c.Kind, formatFloat(c.Scale), c.Source,
			formatFloat(c.CPI), strconv.FormatInt(c.Cycles, 10), strconv.FormatUint(c.Committed, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
