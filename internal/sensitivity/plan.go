// Package sensitivity implements the perturbation-based bottleneck analysis
// the companion papers (Pompougnac, Dutilleul et al.) build on top of CPI
// stacks: perturb each tunable machine parameter around a baseline, measure
// the CPI response of every perturbed configuration, rank the parameters by
// the headroom an improvement buys, and cross-check the multi-stage CPI
// stack's predicted bounds against the measured idealization gains.
//
// The package splits into three layers:
//
//   - a plan generator (NewPlan): for every selected parameter it emits a
//     bounded set of perturbed, validated machine configurations around the
//     baseline — scaled variants (×0.5, ×2, ...) plus the paper's
//     idealized/∞ endpoints — each of which is an ordinary simulation keyed
//     by the shared content-addressed derivation (resultcache.SimKey), so
//     overlapping plans and plain simulate requests share cache entries;
//   - an orchestrator (Orchestrator.Execute): fans the plan's cells through
//     a pluggable per-cell runner with bounded concurrency and first-error
//     cancellation;
//   - a report builder (BuildReport): per-parameter sensitivity scores, a
//     bottleneck ranking, and the stack-bound cross-check.
package sensitivity

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"perfstacks/internal/cache"
	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/sim"
	"perfstacks/internal/workload"
)

// Cell kinds: how a cell's machine relates to the baseline.
const (
	// KindBaseline is the unperturbed machine (always Cells[0]).
	KindBaseline = "baseline"
	// KindScale is a parameter scaled by Cell.Scale.
	KindScale = "scale"
	// KindInf is a parameter's unbounded/free endpoint (∞ resources, zero
	// penalty, uncapped bandwidth).
	KindInf = "inf"
	// KindIdeal is one of the paper's four idealizations (§IV); only these
	// carry the non-negative-gain guarantee and a stack-bound cross-check.
	KindIdeal = "ideal"
)

// Parameter is one tunable machine knob the plan generator can perturb.
type Parameter struct {
	// Name identifies the parameter in plans and reports (e.g. "rob_size").
	Name string
	// Group collects related parameters for coarse selection ("widths",
	// "queues", "caches", "mem", "bpred", "exec", "ports").
	Group string
	// Doc is a one-line description.
	Doc string

	// apply scales the knob by factor (relative to the baseline value),
	// clamping to the model's validity floors.
	apply func(m *config.Machine, factor float64)
	// inf applies the unbounded endpoint (nil = none).
	inf func(m *config.Machine)
	// ideal applies the paper idealization measuring component (nil = none).
	ideal     func(m *config.Machine)
	component core.Component
}

// Cell is one configuration of a perturbation plan.
type Cell struct {
	// Param names the perturbed Parameter ("" for the baseline cell).
	Param string
	// Variant labels the perturbation within the parameter ("x0.5", "x2",
	// "inf", "ideal", "baseline").
	Variant string
	// Kind is one of the Kind* constants.
	Kind string
	// Scale is the perturbation factor for KindScale cells (0 otherwise).
	Scale float64
	// Component is the CPI stack component this cell's idealization measures
	// (valid only for KindIdeal cells).
	Component core.Component
	// Machine is the perturbed, validated configuration.
	Machine config.Machine
}

// Plan is a fully generated perturbation plan: one workload measured on the
// baseline machine and every perturbed variant. Cells[0] is the baseline.
type Plan struct {
	// Baseline is the validated, unperturbed machine.
	Baseline config.Machine
	// Profile is the generator workload every cell runs.
	Profile workload.Profile
	// Uops is the trace length per cell, including warmup.
	Uops uint64
	// Opts are the simulation options shared by every cell. CPI accounting
	// is always on (the report's bound cross-check needs the stacks);
	// Context is ignored — runners supply a per-cell context.
	Opts sim.Options
	// Cells are the plan's configurations, baseline first.
	Cells []Cell
}

// PlanOptions selects what NewPlan generates.
type PlanOptions struct {
	// Params selects parameters by name or group name; empty means all.
	Params []string
	// Variants are the perturbation factors applied to each parameter
	// (empty means {0.5, 2}). Each must be finite, in (0, 64] and != 1.
	Variants []float64
	// NoEndpoints drops the idealized/∞ endpoint cells, leaving only the
	// scaled variants (and disables the report's bound cross-check).
	NoEndpoints bool
}

// MaxCells bounds a generated plan: large enough for every parameter at
// eight variants, small enough that one plan cannot ask for unbounded work.
const MaxCells = 2048

// maxVariants bounds PlanOptions.Variants.
const maxVariants = 8

// maxVariantFactor bounds a single perturbation factor.
const maxVariantFactor = 64

// infResource stands in for an unbounded width, queue or port count: far
// above the point where the resource can bind, small enough to simulate.
const infResource = 512

// maxPredictorBits caps the scaled predictor table sizes (2^bits entries
// are allocated per table).
const maxPredictorBits = 24

// scaleInt scales *v by factor with round-to-nearest, clamping at floor.
func scaleInt(v *int, factor float64, floor int) {
	n := int(math.Floor(float64(*v)*factor + 0.5))
	if n < floor {
		n = floor
	}
	*v = n
}

// scaleInt64 is scaleInt for int64 knobs.
func scaleInt64(v *int64, factor float64, floor int64) {
	n := int64(math.Floor(float64(*v)*factor + 0.5))
	if n < floor {
		n = floor
	}
	*v = n
}

// IdealComponents lists the CPI stack components that have a machine
// idealization knob, in stack order: the four the paper idealizes in §IV.
func IdealComponents() []core.Component {
	return []core.Component{core.CompBpred, core.CompICache, core.CompDCache, core.CompALULat}
}

// IdealizeFor maps a CPI stack component to the idealization that removes
// it. Components without a machine knob map to the identity configuration.
func IdealizeFor(c core.Component) config.Idealize {
	//simlint:partial only the four components of IdealComponents have a machine knob; the rest map to the identity config
	switch c {
	case core.CompICache:
		return config.Idealize{PerfectICache: true}
	case core.CompDCache:
		return config.Idealize{PerfectDCache: true}
	case core.CompBpred:
		return config.Idealize{PerfectBpred: true}
	case core.CompALULat:
		return config.Idealize{SingleCycleALU: true}
	}
	return config.Idealize{}
}

// cacheLevel locates one cache level's config inside a machine.
type cacheLevel struct {
	key string
	get func(m *config.Machine) *cache.Config
}

func cacheLevels() []cacheLevel {
	return []cacheLevel{
		{"l1i", func(m *config.Machine) *cache.Config { return &m.Hierarchy.L1I }},
		{"l1d", func(m *config.Machine) *cache.Config { return &m.Hierarchy.L1D }},
		{"l2", func(m *config.Machine) *cache.Config { return &m.Hierarchy.L2 }},
		{"l3", func(m *config.Machine) *cache.Config { return &m.Hierarchy.L3 }},
	}
}

// Parameters returns the full parameter registry in declaration order (the
// order is part of the plan's canonical cell sequence, so it is stable).
func Parameters() []Parameter {
	intKnob := func(name, group, doc string, get func(m *config.Machine) *int, floor int, unbounded bool) Parameter {
		p := Parameter{
			Name: name, Group: group, Doc: doc,
			apply: func(m *config.Machine, f float64) { scaleInt(get(m), f, floor) },
		}
		if unbounded {
			p.inf = func(m *config.Machine) { *get(m) = infResource }
		}
		return p
	}
	ps := []Parameter{
		intKnob("fetch_width", "widths", "uops fetched per cycle",
			func(m *config.Machine) *int { return &m.Core.FetchWidth }, 1, true),
		intKnob("dispatch_width", "widths", "uops dispatched into the ROB per cycle",
			func(m *config.Machine) *int { return &m.Core.DispatchWidth }, 1, true),
		intKnob("issue_width", "widths", "uops issued to functional units per cycle",
			func(m *config.Machine) *int { return &m.Core.IssueWidth }, 1, true),
		intKnob("commit_width", "widths", "uops committed per cycle",
			func(m *config.Machine) *int { return &m.Core.CommitWidth }, 1, true),
		intKnob("rob_size", "queues", "reorder buffer entries",
			func(m *config.Machine) *int { return &m.Core.ROBSize }, 2, true),
		intKnob("rs_size", "queues", "reservation station entries",
			func(m *config.Machine) *int { return &m.Core.RSSize }, 1, true),
		intKnob("fe_queue", "queues", "front-end queue entries",
			func(m *config.Machine) *int { return &m.Core.FEQueueSize }, 1, true),
	}
	for _, lvl := range cacheLevels() {
		lvl := lvl
		size := Parameter{
			Name: lvl.key + "_size", Group: "caches", Doc: lvl.key + " capacity in bytes",
			apply: func(m *config.Machine, f float64) {
				c := lvl.get(m)
				// At least one full set survives the shrink.
				scaleInt(&c.SizeBytes, f, cache.LineSize*c.Ways)
			},
		}
		switch lvl.key {
		case "l1i":
			size.ideal = func(m *config.Machine) { *m = m.Apply(config.Idealize{PerfectICache: true}) }
			size.component = core.CompICache
		case "l1d":
			size.ideal = func(m *config.Machine) { *m = m.Apply(config.Idealize{PerfectDCache: true}) }
			size.component = core.CompDCache
		}
		ps = append(ps, size,
			Parameter{
				Name: lvl.key + "_latency", Group: "caches", Doc: lvl.key + " hit latency in cycles",
				apply: func(m *config.Machine, f float64) { scaleInt64(&lvl.get(m).HitLatency, f, 1) },
			},
			Parameter{
				Name: lvl.key + "_mshrs", Group: "caches", Doc: lvl.key + " outstanding-miss registers",
				apply: func(m *config.Machine, f float64) { scaleInt(&lvl.get(m).MSHRs, f, 1) },
				// MSHRs = 0 is the model's "effectively unbounded".
				inf: func(m *config.Machine) { lvl.get(m).MSHRs = 0 },
			},
		)
	}
	ps = append(ps,
		Parameter{
			Name: "mem_latency", Group: "mem", Doc: "idle DRAM access latency in cycles",
			apply: func(m *config.Machine, f float64) { scaleInt64(&m.Hierarchy.Mem.Latency, f, 1) },
			inf:   func(m *config.Machine) { m.Hierarchy.Mem.Latency = 1 },
		},
		Parameter{
			Name: "mem_bandwidth", Group: "mem", Doc: "memory bandwidth (factor > 1 means more bandwidth, i.e. fewer cycles per line)",
			// Bandwidth is the inverse of CyclesPerLine, so doubling the
			// bandwidth halves the spacing.
			apply: func(m *config.Machine, f float64) { scaleInt64(&m.Hierarchy.Mem.CyclesPerLine, 1/f, 1) },
			// CyclesPerLine = 0 disables the bandwidth cap entirely.
			inf: func(m *config.Machine) { m.Hierarchy.Mem.CyclesPerLine = 0 },
		},
		Parameter{
			Name: "bpred_size", Group: "bpred", Doc: "predictor table sizes (factor 2 = one extra index bit, BTB/RAS scaled directly)",
			apply: func(m *config.Machine, f float64) {
				// Table sizes are log2-scaled: ×2 is one more index bit.
				delta := int(math.Floor(math.Log2(f) + 0.5))
				bits := func(v *int) {
					n := *v + delta
					if n < 1 {
						n = 1
					}
					if n > maxPredictorBits {
						n = maxPredictorBits
					}
					*v = n
				}
				bits(&m.Bpred.BimodalBits)
				bits(&m.Bpred.GshareBits)
				bits(&m.Bpred.ChoiceBits)
				scaleInt(&m.Bpred.BTBEntries, f, m.Bpred.BTBWays)
				scaleInt(&m.Bpred.RASEntries, f, 1)
			},
			ideal:     func(m *config.Machine) { *m = m.Apply(config.Idealize{PerfectBpred: true}) },
			component: core.CompBpred,
		},
		Parameter{
			Name: "mispredict_penalty", Group: "bpred", Doc: "frontend redirect penalty in cycles",
			apply: func(m *config.Machine, f float64) { scaleInt64(&m.Core.MispredictPenalty, f, 0) },
			inf:   func(m *config.Machine) { m.Core.MispredictPenalty = 0 },
		},
		Parameter{
			Name: "alu_latency", Group: "exec", Doc: "multi-cycle execution latencies (mul/div/FP)",
			apply: func(m *config.Machine, f float64) {
				l := &m.Core.Lat
				for _, v := range []*int64{&l.Mul, &l.Div, &l.FPAdd, &l.FPMul, &l.FPDiv, &l.FMA, &l.Broadcast} {
					scaleInt64(v, f, 1)
				}
			},
			ideal:     func(m *config.Machine) { *m = m.Apply(config.Idealize{SingleCycleALU: true}) },
			component: core.CompALULat,
		},
		intKnob("int_alus", "ports", "integer ALU ports",
			func(m *config.Machine) *int { return &m.Core.IntALUs }, 1, true),
		intKnob("int_muldivs", "ports", "integer multiply/divide ports",
			func(m *config.Machine) *int { return &m.Core.IntMulDivs }, 1, true),
		intKnob("load_ports", "ports", "load issue ports",
			func(m *config.Machine) *int { return &m.Core.LoadPorts }, 1, true),
		intKnob("store_ports", "ports", "store issue ports",
			func(m *config.Machine) *int { return &m.Core.StorePorts }, 1, true),
		intKnob("vfp_units", "ports", "vector/FP units",
			func(m *config.Machine) *int { return &m.Core.VFPUnits }, 1, true),
	)
	return ps
}

// selectParameters resolves names (parameter or group) to registry entries,
// preserving registry order and deduplicating.
func selectParameters(names []string) ([]Parameter, error) {
	all := Parameters()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	matched := make(map[string]bool, len(names))
	var out []Parameter
	for _, p := range all {
		if want[p.Name] || want[p.Group] {
			out = append(out, p)
			matched[p.Name] = true
			matched[p.Group] = true
		}
	}
	for _, n := range names {
		if !matched[n] {
			return nil, fmt.Errorf("%w: unknown sensitivity parameter or group %q", sim.ErrBadValue, n)
		}
	}
	return out, nil
}

// variantLabel formats a scale factor as a variant name ("x0.5", "x2").
func variantLabel(f float64) string {
	return "x" + strconv.FormatFloat(f, 'g', -1, 64)
}

// NewPlan generates the perturbation plan for one machine and workload.
// Every cell's machine is validated and canonicalized; perturbations that
// clamp back to the baseline (or to another variant of the same parameter)
// are dropped, so each cell measures a distinct configuration. CPI stack
// accounting is forced on: the report's ranking and bound cross-check need
// the stacks.
func NewPlan(m config.Machine, prof workload.Profile, uops uint64, opts sim.Options, po PlanOptions) (*Plan, error) {
	if uops == 0 {
		return nil, fmt.Errorf("%w: plan needs uops > 0", sim.ErrBadValue)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: baseline machine: %v", sim.ErrBadValue, err)
	}
	opts.CPI = true
	opts.Context = nil
	if err := sim.ValidateOptions(opts); err != nil {
		return nil, err
	}

	params, err := selectParameters(po.Params)
	if err != nil {
		return nil, err
	}

	variants := po.Variants
	if len(variants) == 0 {
		variants = []float64{0.5, 2}
	}
	if len(variants) > maxVariants {
		return nil, fmt.Errorf("%w: at most %d variants per plan, got %d", sim.ErrBadValue, maxVariants, len(variants))
	}
	variants = append([]float64(nil), variants...)
	sort.Float64s(variants)
	for i, f := range variants {
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 || f > maxVariantFactor {
			return nil, fmt.Errorf("%w: variant factor %v out of range (0, %d]", sim.ErrBadValue, f, maxVariantFactor)
		}
		if f == 1 {
			return nil, fmt.Errorf("%w: variant factor 1 is the baseline", sim.ErrBadValue)
		}
		if i > 0 && variants[i-1] == f {
			return nil, fmt.Errorf("%w: duplicate variant factor %v", sim.ErrBadValue, f)
		}
	}

	baseBytes, err := sim.CanonicalMachine(m)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Baseline: m,
		Profile:  prof,
		Uops:     uops,
		Opts:     opts,
		Cells:    []Cell{{Variant: KindBaseline, Kind: KindBaseline, Machine: m}},
	}

	addCell := func(c Cell, seen map[string]bool) error {
		if err := c.Machine.Validate(); err != nil {
			return fmt.Errorf("sensitivity: %s/%s: %w", c.Param, c.Variant, err)
		}
		mb, err := sim.CanonicalMachine(c.Machine)
		if err != nil {
			return fmt.Errorf("sensitivity: %s/%s: %w", c.Param, c.Variant, err)
		}
		// A perturbation that clamps back to the baseline (or to a prior
		// variant of the same parameter) measures nothing new.
		if string(mb) == string(baseBytes) || seen[string(mb)] {
			return nil
		}
		seen[string(mb)] = true
		p.Cells = append(p.Cells, c)
		return nil
	}

	for _, par := range params {
		seen := make(map[string]bool)
		for _, f := range variants {
			mm := m
			par.apply(&mm, f)
			if err := addCell(Cell{Param: par.Name, Variant: variantLabel(f), Kind: KindScale, Scale: f, Machine: mm}, seen); err != nil {
				return nil, err
			}
		}
		if po.NoEndpoints {
			continue
		}
		if par.inf != nil {
			mm := m
			par.inf(&mm)
			if err := addCell(Cell{Param: par.Name, Variant: KindInf, Kind: KindInf, Machine: mm}, seen); err != nil {
				return nil, err
			}
		}
		if par.ideal != nil {
			mm := m
			par.ideal(&mm)
			if err := addCell(Cell{Param: par.Name, Variant: KindIdeal, Kind: KindIdeal, Component: par.component, Machine: mm}, seen); err != nil {
				return nil, err
			}
		}
	}
	if len(p.Cells) > MaxCells {
		return nil, fmt.Errorf("%w: plan has %d cells, max %d (narrow params or variants)", sim.ErrBadValue, len(p.Cells), MaxCells)
	}
	return p, nil
}

// CellKey derives cell i's content-addressed result key — the same
// derivation plain simulate requests use, so overlapping plans and
// individual runs share cache entries.
func (p *Plan) CellKey(i int) (resultcache.Key, error) {
	return resultcache.SimKey(p.Cells[i].Machine, p.Profile, p.Uops, p.Opts)
}

// Key derives the plan-level cache key for the finished report: the labeled
// sequence of cell keys plus the report schema version. Each cell key
// already binds its machine, the workload, trace length, simulation options
// and the simulator schema version, so any change that could alter the
// report changes the plan key.
func (p *Plan) Key() (resultcache.Key, error) {
	parts := make([][]byte, 0, len(p.Cells)+2)
	parts = append(parts, []byte("sensitivity-plan"), []byte(ReportSchemaVersion))
	for i := range p.Cells {
		k, err := p.CellKey(i)
		if err != nil {
			return resultcache.Key{}, err
		}
		cell := p.Cells[i]
		part := make([]byte, 0, len(cell.Param)+len(cell.Variant)+1+len(k))
		part = append(part, cell.Param...)
		part = append(part, '/')
		part = append(part, cell.Variant...)
		part = append(part, k[:]...)
		parts = append(parts, part)
	}
	return resultcache.KeyOf(parts...), nil
}
