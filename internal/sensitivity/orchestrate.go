package sensitivity

import (
	"context"
	"fmt"
	"sync"

	"perfstacks/internal/export"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/runner"
	"perfstacks/internal/sim"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

// RunCellFunc executes one plan cell and returns its complete result with
// provenance. It must honor ctx: a canceled context stops the cell (and the
// plan) promptly.
type RunCellFunc func(ctx context.Context, p *Plan, cell Cell) (CellOutcome, error)

// Progress reports one completed cell to an Orchestrator.OnCell observer.
type Progress struct {
	// Index is the cell's position in Plan.Cells.
	Index int
	// Done counts completed cells including this one; Total is len(Cells).
	Done, Total int
	// Cell is the completed cell.
	Cell Cell
	// CPI is the cell's measured CPI.
	CPI float64
	// Source is where the result came from (Source* constants).
	Source string
}

// Orchestrator fans a plan's cells through a per-cell runner with bounded
// concurrency, first-error cancellation, and serialized progress callbacks,
// then folds the outcomes into the ranked report.
type Orchestrator struct {
	// Run executes one cell (required).
	Run RunCellFunc
	// Concurrency bounds in-flight cells (<= 0 means runner.Workers(0),
	// i.e. GOMAXPROCS).
	Concurrency int
	// OnCell, when non-nil, observes completions in completion order. Calls
	// are serialized; Execute does not return until the last call has.
	OnCell func(Progress)
}

// Execute runs the plan to completion. On any cell error the remaining
// cells are canceled and the first error is returned — a partial plan is
// not a measurement, so no report is built (completed cells stay in
// whatever cache the runner populated, which is exactly what makes a retry
// cheap). Execute joins every in-flight cell before returning.
func (o *Orchestrator) Execute(ctx context.Context, p *Plan) (*Report, error) {
	if o.Run == nil {
		return nil, fmt.Errorf("sensitivity: Orchestrator.Run is nil")
	}
	conc := o.Concurrency
	if conc <= 0 {
		conc = runner.Workers(0)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]CellOutcome, len(p.Cells))
	sem := make(chan struct{}, conc)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
launch:
	for i := range p.Cells {
		select {
		case sem <- struct{}{}:
		case <-cctx.Done():
			break launch
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out, err := o.Run(cctx, p, p.Cells[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					cell := p.Cells[i]
					label := cell.Variant
					if cell.Param != "" {
						label = cell.Param + "/" + cell.Variant
					}
					firstErr = fmt.Errorf("sensitivity: cell %s: %w", label, err)
					cancel()
				}
				return
			}
			outcomes[i] = out
			done++
			if o.OnCell != nil {
				o.OnCell(Progress{
					Index: i, Done: done, Total: len(p.Cells),
					Cell: p.Cells[i], CPI: out.Result.CPIOf(), Source: out.Source,
				})
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return BuildReport(p, outcomes)
}

// LocalRunner returns a RunCellFunc that executes cells in this process:
// the shared result cache first (when non-nil), then a real simulation on
// the pool (inline when pool is nil). Completed simulations are written
// back to the cache, so a re-run of the same plan — or any overlapping
// plan, sweep or simd request sharing the cache directory — is mostly
// cache hits.
func LocalRunner(pool *runner.Pool, cache *resultcache.Cache) RunCellFunc {
	return func(ctx context.Context, p *Plan, cell Cell) (CellOutcome, error) {
		key, err := resultcache.SimKey(cell.Machine, p.Profile, p.Uops, p.Opts)
		if err != nil {
			return CellOutcome{}, err
		}
		if cache != nil {
			if payload, ok := cache.Get(key); ok {
				res, _, err := export.DecodeResult(payload)
				if err == nil {
					return CellOutcome{Result: res, Source: SourceCache}, nil
				}
				// A corrupt entry degrades to recomputation.
			}
		}
		var res sim.Result
		job := func(jctx context.Context) error {
			opts := p.Opts
			opts.Context = jctx
			res = sim.Run(cell.Machine, trace.NewLimit(workload.NewGenerator(p.Profile), p.Uops), opts)
			if res.Err != nil {
				return res.Err
			}
			if cache != nil {
				if enc, err := export.EncodeResult(&res, p.Profile.Name); err == nil {
					// Best-effort: a full disk degrades to recomputation.
					_ = cache.Put(key, enc)
				}
			}
			return nil
		}
		if pool == nil {
			if err := job(ctx); err != nil {
				return CellOutcome{}, err
			}
		} else {
			done, err := pool.SubmitWait(ctx, job)
			if err != nil {
				return CellOutcome{}, err
			}
			if err := <-done; err != nil {
				return CellOutcome{}, err
			}
		}
		return CellOutcome{Result: &res, Source: SourceSim}, nil
	}
}
