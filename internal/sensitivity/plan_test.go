package sensitivity

import (
	"errors"
	"testing"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/sim"
	"perfstacks/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	prof, ok := workload.SPECProfile(name)
	if !ok {
		t.Fatalf("unknown profile %q", name)
	}
	return prof
}

func TestPlanGeneration(t *testing.T) {
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cells[0].Kind != KindBaseline {
		t.Fatalf("Cells[0] is %q, want baseline", p.Cells[0].Kind)
	}
	if !p.Opts.CPI {
		t.Fatal("NewPlan must force CPI accounting on")
	}
	// Every cell is a valid, distinct-from-baseline configuration.
	baseBytes, err := sim.CanonicalMachine(p.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	perParam := make(map[string]map[string]bool)
	ideals := make(map[core.Component]bool)
	for i, c := range p.Cells[1:] {
		if err := c.Machine.Validate(); err != nil {
			t.Fatalf("cell %d (%s/%s) invalid: %v", i+1, c.Param, c.Variant, err)
		}
		mb, err := sim.CanonicalMachine(c.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if string(mb) == string(baseBytes) {
			t.Fatalf("cell %s/%s is the baseline in disguise", c.Param, c.Variant)
		}
		if perParam[c.Param] == nil {
			perParam[c.Param] = make(map[string]bool)
		}
		if perParam[c.Param][string(mb)] {
			t.Fatalf("cell %s/%s duplicates another variant of the same parameter", c.Param, c.Variant)
		}
		perParam[c.Param][string(mb)] = true
		if c.Kind == KindIdeal {
			ideals[c.Component] = true
		}
	}
	for _, comp := range IdealComponents() {
		if !ideals[comp] {
			t.Errorf("no idealized endpoint cell for component %s", comp)
		}
	}
	// Every registry parameter contributes at least one cell on BDW.
	for _, par := range Parameters() {
		if len(perParam[par.Name]) == 0 {
			t.Errorf("parameter %s generated no cells", par.Name)
		}
	}
}

func TestPlanParamSelection(t *testing.T) {
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{}, PlanOptions{Params: []string{"bpred"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells[1:] {
		if c.Param != "bpred_size" && c.Param != "mispredict_penalty" {
			t.Fatalf("group filter leaked parameter %q", c.Param)
		}
	}
	if _, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{}, PlanOptions{Params: []string{"warp_drive"}}); !errors.Is(err, sim.ErrBadValue) {
		t.Fatalf("unknown parameter: got %v, want ErrBadValue", err)
	}
}

func TestPlanVariantValidation(t *testing.T) {
	for _, bad := range [][]float64{{0}, {-2}, {1}, {65}, {2, 2}, {0.5, 2, 4, 8, 16, 32, 0.25, 0.125, 0.0625}} {
		if _, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{}, PlanOptions{Variants: bad}); !errors.Is(err, sim.ErrBadValue) {
			t.Errorf("variants %v: got %v, want ErrBadValue", bad, err)
		}
	}
	if _, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 0, sim.Options{}, PlanOptions{}); !errors.Is(err, sim.ErrBadValue) {
		t.Error("uops=0 must be rejected")
	}
}

func TestPlanNoEndpoints(t *testing.T) {
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{}, PlanOptions{NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells[1:] {
		if c.Kind != KindScale {
			t.Fatalf("NoEndpoints left a %s cell (%s/%s)", c.Kind, c.Param, c.Variant)
		}
	}
}

func TestPlanKeyBindsContents(t *testing.T) {
	mk := func(po PlanOptions, uops uint64) [32]byte {
		t.Helper()
		p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), uops, sim.Options{}, po)
		if err != nil {
			t.Fatal(err)
		}
		k, err := p.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	a := mk(PlanOptions{Params: []string{"bpred"}}, 10_000)
	b := mk(PlanOptions{Params: []string{"bpred"}}, 10_000)
	if a != b {
		t.Fatal("identical plans derived different keys")
	}
	if a == mk(PlanOptions{Params: []string{"bpred"}}, 20_000) {
		t.Fatal("trace length did not change the plan key")
	}
	if a == mk(PlanOptions{Params: []string{"bpred"}, Variants: []float64{0.25, 4}}, 10_000) {
		t.Fatal("variant set did not change the plan key")
	}
	if a == mk(PlanOptions{Params: []string{"caches"}}, 10_000) {
		t.Fatal("parameter set did not change the plan key")
	}
}

func TestPlanHundredCells(t *testing.T) {
	p, err := NewPlan(config.BDW(), mustProfile(t, "mcf"), 10_000, sim.Options{},
		PlanOptions{Variants: []float64{0.25, 0.5, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) < 100 {
		t.Fatalf("extended plan has %d cells, want >= 100", len(p.Cells))
	}
	if len(p.Cells) > MaxCells {
		t.Fatalf("extended plan has %d cells, above MaxCells=%d", len(p.Cells), MaxCells)
	}
}
