// Command cpistack simulates a workload on a machine configuration and
// prints its multi-stage CPI stacks (dispatch, issue, commit), optionally
// together with the idealization deltas (perfect I-cache / D-cache / branch
// predictor, single-cycle ALU).
//
// Usage:
//
//	cpistack -machine BDW -workload mcf -uops 200000 [-idealize] [-scheme oracle]
//	cpistack -list
package main

import (
	"flag"
	"fmt"
	"os"

	"perfstacks/internal/config"
	"perfstacks/internal/experiments"
	"perfstacks/internal/export"
	"perfstacks/internal/sim"
	"perfstacks/internal/textplot"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	machine := flag.String("machine", "BDW", "machine configuration: BDW, KNL or SKX")
	wl := flag.String("workload", "mcf", "workload profile name (see -list)")
	uops := flag.Uint64("uops", 200_000, "uops to simulate")
	idealize := flag.Bool("idealize", false, "also run the four idealizations and report CPI deltas")
	scheme := flag.String("scheme", "oracle", "wrong-path accounting scheme: oracle, simple or speculative")
	wrongpath := flag.String("wrongpath", "none", "wrong-path pipeline model: none or synth")
	memdepth := flag.Bool("memdepth", false, "also print the per-level Dcache breakdown")
	structural := flag.Bool("structural", false, "also print the issue-stage structural stall breakdown")
	fetchStack := flag.Bool("fetch", false, "also measure and print the fetch-stage stack")
	jsonOut := flag.Bool("json", false, "emit the stacks as JSON instead of text")
	csvOut := flag.Bool("csv", false, "emit the stacks as CSV instead of text")
	list := flag.Bool("list", false, "list workload profile names and exit")
	flag.Parse()

	if *list {
		for _, n := range workload.SPECNames() {
			fmt.Println(n)
		}
		return
	}

	m, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	prof, ok := workload.SPECProfile(*wl)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q (use -list)", *wl))
	}
	opts := sim.Default()
	if opts.Scheme, err = sim.ParseScheme(*scheme); err != nil {
		fatal(err)
	}
	if opts.WrongPath, err = sim.ParseWrongPathMode(*wrongpath); err != nil {
		fatal(err)
	}
	opts.MemDepth = *memdepth
	opts.Structural = *structural
	opts.Fetch = *fetchStack

	mkTrace := func() trace.Reader {
		return trace.NewLimit(workload.NewGenerator(prof), *uops)
	}

	res := sim.Run(m, mkTrace(), opts)
	if res.Err != nil {
		// Partial stacks look plausible; refuse to print them as a result.
		fatal(res.Err)
	}
	if *jsonOut {
		if err := export.MultiStackToJSON(os.Stdout, res.Stacks, prof.Name, m.Name); err != nil {
			fatal(err)
		}
		return
	}
	if *csvOut {
		if err := export.MultiStackToCSV(os.Stdout, res.Stacks, prof.Name, m.Name); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s on %s: %d uops, %d cycles, CPI %.3f (bpred MPKI %.2f)\n\n",
		prof.Name, m.Name, res.Stats.Committed, res.Stats.Cycles, res.Stats.CPI(),
		1000*float64(res.Bpred.Mispredictions)/float64(res.Stats.Committed))
	fmt.Print(experiments.RenderMultiStack(res.Stacks))
	if *memdepth {
		fmt.Println()
		fmt.Println(res.MemDepth.String())
	}
	if *structural {
		fmt.Println()
		fmt.Println(res.Structural.String())
	}
	if *fetchStack {
		fmt.Println()
		fmt.Println(res.Fetch.String())
	}

	if !*idealize {
		return
	}
	fmt.Println()
	tbl := textplot.NewTable("idealization", "CPI", "delta")
	base := res.Stats.CPI()
	ids := []config.Idealize{
		{PerfectICache: true},
		{PerfectDCache: true},
		{PerfectBpred: true},
		{SingleCycleALU: true},
	}
	for _, id := range ids {
		r := sim.Run(m.Apply(id), mkTrace(), sim.Options{})
		if r.Err != nil {
			fatal(r.Err)
		}
		tbl.Rowf(id.String(), r.Stats.CPI(), base-r.Stats.CPI())
	}
	fmt.Print(tbl.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpistack:", err)
	os.Exit(1)
}
