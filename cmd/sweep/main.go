// Command sweep runs every SPEC-like workload profile on one or more
// machine configurations and emits the multi-stage CPI stacks as a single
// CSV — the bulk-characterization workflow, ready for spreadsheets or
// plotting scripts.
//
// Usage:
//
//	sweep -machines BDW,KNL -uops 300000 -warmup 200000 > stacks.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"perfstacks/internal/config"
	"perfstacks/internal/export"
	"perfstacks/internal/sim"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	machines := flag.String("machines", "BDW,KNL", "comma-separated machine list")
	uops := flag.Uint64("uops", 300_000, "measured uops per run")
	warm := flag.Uint64("warmup", 200_000, "warm-up uops per run")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations")
	flag.Parse()

	var ms []config.Machine
	for _, name := range strings.Split(*machines, ",") {
		m, err := config.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		ms = append(ms, m)
	}

	profs := workload.SPECProfiles()
	type job struct {
		m    config.Machine
		prof workload.Profile
	}
	var jobs []job
	for _, m := range ms {
		for _, p := range profs {
			jobs = append(jobs, job{m, p})
		}
	}

	rows := make([]export.LabeledStacks, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(1, *par))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[i]
			opts := sim.Default()
			opts.WarmupUops = *warm
			res := sim.Run(j.m, trace.NewLimit(workload.NewGenerator(j.prof), *warm+*uops), opts)
			rows[i] = export.LabeledStacks{
				Workload: j.prof.Name,
				Machine:  j.m.Name,
				Stacks:   res.Stacks,
			}
		}(i)
	}
	wg.Wait()

	if err := export.StacksToCSV(os.Stdout, rows); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs (%d workloads x %d machines)\n",
		len(jobs), len(profs), len(ms))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
