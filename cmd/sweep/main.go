// Command sweep runs every SPEC-like workload profile on one or more
// machine configurations and emits the multi-stage CPI stacks as a single
// CSV — the bulk-characterization workflow, ready for spreadsheets or
// plotting scripts.
//
// The sweep is fault tolerant: each completed run is checkpointed as one
// JSONL line the moment it finishes, SIGINT/SIGTERM cancel the worker pool
// cooperatively and flush partial results, and -resume reloads the
// checkpoint and simulates only the missing configurations. A run whose
// trace faults or that panics is reported and makes the sweep exit non-zero
// without taking down the other runs.
//
// Usage:
//
//	sweep -machines BDW,KNL -uops 300000 -warmup 200000 > stacks.csv
//	sweep -benchjson bench.json > stacks.csv   # also write run stats as JSON
//	sweep -checkpoint sweep.jsonl              # persist completed runs
//	sweep -checkpoint sweep.jsonl -resume      # continue an interrupted sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"perfstacks/internal/config"
	"perfstacks/internal/export"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/runner"
	"perfstacks/internal/sensitivity"
	"perfstacks/internal/sim"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	machines := flag.String("machines", "BDW,KNL", "comma-separated machine list")
	uops := flag.Uint64("uops", 300_000, "measured uops per run")
	warm := flag.Uint64("warmup", 200_000, "warm-up uops per run")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations")
	benchJSON := flag.String("benchjson", "", "write per-run wall-time/throughput stats as JSON to this file (- for stderr)")
	ckptPath := flag.String("checkpoint", "", "persist each completed run as a JSONL line in this file")
	resume := flag.Bool("resume", false, "reload -checkpoint and skip already-completed runs")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (shared with simd and experiments)")
	idealize := flag.Bool("idealize", false, "also sweep each machine's four idealized endpoints (perfect bpred/icache/dcache, single-cycle ALU)")
	flag.Parse()

	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		disk, err := resultcache.NewDisk(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache = resultcache.New(resultcache.NewMemory(64<<20), disk)
	}

	var ms []config.Machine
	for _, name := range strings.Split(*machines, ",") {
		m, err := config.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		ms = append(ms, m)
	}

	profs := workload.SPECProfiles()
	type job struct {
		m     config.Machine
		label string // machine column: the name plus any idealization suffix
		prof  workload.Profile
	}
	var jobs []job
	for _, m := range ms {
		// The machine's Name stays untouched across variants so every job's
		// cache key derives from the canonical (possibly idealized) machine
		// encoding — the same keys sensitivity's endpoint cells use.
		variants := []job{{m: m, label: m.Name}}
		if *idealize {
			for _, comp := range sensitivity.IdealComponents() {
				id := sensitivity.IdealizeFor(comp)
				variants = append(variants, job{m: m.Apply(id), label: m.Name + "+" + id.String()})
			}
		}
		for _, v := range variants {
			for _, p := range profs {
				jobs = append(jobs, job{v.m, v.label, p})
			}
		}
	}

	// SIGINT/SIGTERM cancel the pool: running simulations stop at their next
	// cancellation poll, unstarted jobs are skipped, and everything already
	// checkpointed stays on disk for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ckpt *runner.Checkpoint
	if *ckptPath != "" {
		var err error
		ckpt, err = runner.OpenCheckpoint(*ckptPath, *resume)
		if err != nil {
			fatal(err)
		}
		defer ckpt.Close()
		if *resume && ckpt.Len() > 0 {
			fmt.Fprintf(os.Stderr, "sweep: resuming, %d/%d runs already completed\n", ckpt.Len(), len(jobs))
		}
	}

	rows := make([]export.LabeledStacks, len(jobs))
	completed := make([]bool, len(jobs))
	onDone := func(i int, s runner.Stat) {
		if s.Err != "" || ckpt == nil {
			return
		}
		if _, ok := ckpt.Lookup(i); ok {
			return // reused a resumed entry; it is already on disk
		}
		if err := ckpt.Record(i, s.Label, rows[i]); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}
	report := runner.RunTimedOpts(ctx, runner.Options{Workers: max(1, *par)}, len(jobs),
		func(jctx context.Context, i int) (string, uint64, error) {
			j := jobs[i]
			label := j.prof.Name + "/" + j.label
			if ckpt != nil {
				if e, ok := ckpt.Lookup(i); ok {
					var row export.LabeledStacks
					if err := json.Unmarshal(e.Payload, &row); err != nil {
						return label, 0, fmt.Errorf("corrupt checkpoint payload (delete %s or rerun without -resume): %w", *ckptPath, err)
					}
					rows[i] = row
					completed[i] = true
					return label, 0, nil
				}
			}
			opts := sim.Default()
			opts.WarmupUops = *warm
			opts.Context = jctx
			var res sim.Result
			if cache != nil {
				res, _ = resultcache.RunSPEC(cache, j.m, j.prof, *warm+*uops, opts)
			} else {
				res = sim.Run(j.m, trace.NewLimit(workload.NewGenerator(j.prof), *warm+*uops), opts)
			}
			if res.Err != nil {
				return label, 0, res.Err
			}
			rows[i] = export.LabeledStacks{
				Workload: j.prof.Name,
				Machine:  j.label,
				Stacks:   res.Stacks,
			}
			completed[i] = true
			return label, *warm + *uops, nil
		}, onDone)

	if *benchJSON != "" {
		out := os.Stderr
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fatal(err)
		}
	}

	var missing int
	for _, done := range completed {
		if !done {
			missing++
		}
	}
	switch {
	case ctx.Err() != nil:
		// Interrupted: canceled runs show up as failures too, but the story
		// to tell is the resume path, not the per-run cancellation errors.
		hint := ""
		if ckpt != nil {
			hint = fmt.Sprintf("; completed runs are checkpointed, rerun with -checkpoint %s -resume", *ckptPath)
		}
		fmt.Fprintf(os.Stderr, "sweep: interrupted with %d of %d runs missing; no CSV emitted%s\n",
			missing, len(jobs), hint)
		os.Exit(1)
	case report.Failed():
		for i := range report.Errors {
			fmt.Fprintln(os.Stderr, "sweep:", report.Errors[i].Error())
		}
		fmt.Fprintf(os.Stderr, "sweep: %d of %d runs failed; no CSV emitted (partial stacks are not a measurement)\n",
			len(report.Errors), len(jobs))
		os.Exit(1)
	case missing > 0:
		fmt.Fprintf(os.Stderr, "sweep: %d of %d runs missing; no CSV emitted\n", missing, len(jobs))
		os.Exit(1)
	}

	// Every run completed: emit the merged CSV (resumed and fresh rows alike).
	if err := export.StacksToCSV(os.Stdout, rows); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs (%d workloads x %d machine variants) in %.1fs, %.0f uops/s aggregate\n",
		len(jobs), len(profs), len(jobs)/len(profs), report.WallSeconds, report.UopsPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
