// Command sweep runs every SPEC-like workload profile on one or more
// machine configurations and emits the multi-stage CPI stacks as a single
// CSV — the bulk-characterization workflow, ready for spreadsheets or
// plotting scripts.
//
// Usage:
//
//	sweep -machines BDW,KNL -uops 300000 -warmup 200000 > stacks.csv
//	sweep -benchjson bench.json > stacks.csv   # also write run stats as JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"perfstacks/internal/config"
	"perfstacks/internal/export"
	"perfstacks/internal/runner"
	"perfstacks/internal/sim"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	machines := flag.String("machines", "BDW,KNL", "comma-separated machine list")
	uops := flag.Uint64("uops", 300_000, "measured uops per run")
	warm := flag.Uint64("warmup", 200_000, "warm-up uops per run")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulations")
	benchJSON := flag.String("benchjson", "", "write per-run wall-time/throughput stats as JSON to this file (- for stderr)")
	flag.Parse()

	var ms []config.Machine
	for _, name := range strings.Split(*machines, ",") {
		m, err := config.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		ms = append(ms, m)
	}

	profs := workload.SPECProfiles()
	type job struct {
		m    config.Machine
		prof workload.Profile
	}
	var jobs []job
	for _, m := range ms {
		for _, p := range profs {
			jobs = append(jobs, job{m, p})
		}
	}

	rows := make([]export.LabeledStacks, len(jobs))
	report := runner.RunTimed(max(1, *par), len(jobs), func(i int) (string, uint64) {
		j := jobs[i]
		opts := sim.Default()
		opts.WarmupUops = *warm
		res := sim.Run(j.m, trace.NewLimit(workload.NewGenerator(j.prof), *warm+*uops), opts)
		rows[i] = export.LabeledStacks{
			Workload: j.prof.Name,
			Machine:  j.m.Name,
			Stacks:   res.Stacks,
		}
		return j.prof.Name + "/" + j.m.Name, *warm + *uops
	})

	if err := export.StacksToCSV(os.Stdout, rows); err != nil {
		fatal(err)
	}
	if *benchJSON != "" {
		out := os.Stderr
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs (%d workloads x %d machines) in %.1fs, %.0f uops/s aggregate\n",
		len(jobs), len(profs), len(ms), report.WallSeconds, report.UopsPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
