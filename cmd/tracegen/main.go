// Command tracegen materializes a synthetic workload into the binary trace
// file format, inspects trace files, and replays them through the simulator.
// The file format is the interchange point for driving the simulator with
// externally captured instruction streams.
//
// Usage:
//
//	tracegen -workload mcf -uops 500000 -o mcf.trace    # generate
//	tracegen -inspect mcf.trace                         # summarize
//	tracegen -replay mcf.trace -machine BDW             # simulate
package main

import (
	"flag"
	"fmt"
	"os"

	"perfstacks/internal/config"
	"perfstacks/internal/experiments"
	"perfstacks/internal/sim"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	wl := flag.String("workload", "mcf", "workload profile to materialize")
	uops := flag.Uint64("uops", 500_000, "uops to write")
	out := flag.String("o", "", "output trace file (generate mode)")
	inspect := flag.String("inspect", "", "trace file to summarize")
	replay := flag.String("replay", "", "trace file to simulate")
	machine := flag.String("machine", "BDW", "machine for -replay")
	warm := flag.Uint64("warmup", 0, "warm-up uops for -replay")
	flag.Parse()

	switch {
	case *inspect != "":
		inspectFile(*inspect)
	case *replay != "":
		replayFile(*replay, *machine, *warm)
	case *out != "":
		generate(*wl, *uops, *out)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need one of -o, -inspect or -replay")
		os.Exit(1)
	}
}

func generate(wl string, uops uint64, out string) {
	prof, ok := workload.SPECProfile(wl)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", wl))
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	n, err := trace.Copy(w, trace.NewLimit(workload.NewGenerator(prof), uops), 0)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d uops of %s to %s\n", n, prof.Name, out)
}

func inspectFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		fatal(err)
	}
	var counts [16]uint64
	var flops, total uint64
	for {
		u, ok := r.Next()
		if !ok {
			break
		}
		counts[u.Op%16]++
		flops += uint64(u.FLOPs())
		total++
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d uops, %d FLOPs\n", path, total, flops)
	for op := trace.Op(0); op < 16; op++ {
		if counts[op] == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d (%.1f%%)\n", op, counts[op], 100*float64(counts[op])/float64(total))
	}
}

func replayFile(path, machine string, warm uint64) {
	m, err := config.ByName(machine)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		fatal(err)
	}
	opts := sim.Default()
	opts.WarmupUops = warm
	res := sim.Run(m, r, opts)
	if res.Err != nil {
		// Covers both decode faults (torn file) and I/O errors: the stacks
		// then describe a truncated stream, not the recorded workload.
		fatal(res.Err)
	}
	fmt.Printf("%s on %s: %d uops, CPI %.3f\n\n", path, m.Name, res.Stats.Committed, res.CPIOf())
	fmt.Print(experiments.RenderMultiStack(res.Stacks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
