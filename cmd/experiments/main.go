// Command experiments regenerates the paper's tables and figures on the
// simulator: Table I, Figures 1-5, the accounting-overhead claim of §IV and
// the wrong-path accounting scheme study of §III-B.
//
// Like cmd/sweep, the driver is fault tolerant: each experiment's rendered
// output can be checkpointed as JSONL the moment it completes, SIGINT and
// SIGTERM cancel in-flight simulations cooperatively, and -resume skips
// experiments that already finished. A panicking experiment is isolated into
// a structured error and the command exits non-zero.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run tableI     # one experiment: tableI, figure1..figure5,
//	                            # overhead, wrongpath
//	experiments -uops 500000 -warmup 300000 -quick=false
//	experiments -run figure2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -checkpoint exp.jsonl -resume
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"perfstacks/internal/experiments"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/runner"
)

func main() {
	run := flag.String("run", "all", "experiment: all, tableI, figure1, figure2, figure3, figure4, figure5, overhead, wrongpath, ablation")
	uops := flag.Uint64("uops", 0, "measured uops per simulation (0 = default)")
	warmup := flag.Uint64("warmup", 0, "warm-up uops per simulation (0 = default)")
	quick := flag.Bool("quick", false, "use the reduced test sizing")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	smpPar := flag.Bool("smp-parallel", false, "step SMP gangs (figure5) on concurrent per-core goroutines; results are byte-identical")
	l3Slices := flag.Int("l3-slices", 0, "address-hash the SMP shared L3 (figure5) into this many slices, a power of two (0 or 1 = monolithic)")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-time stats as JSON to this file (- for stderr)")
	ckptPath := flag.String("checkpoint", "", "persist each completed experiment's output as a JSONL line in this file")
	resume := flag.Bool("resume", false, "reload -checkpoint and skip already-completed experiments")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (shared with simd and sweep)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("start CPU profile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write heap profile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := experiments.DefaultSpec()
	if *quick {
		spec = experiments.QuickSpec()
	}
	if *uops > 0 {
		spec.Uops = *uops
	}
	if *warmup > 0 {
		spec.Warmup = *warmup
	}
	spec.Parallelism = *par
	spec.SMPParallel = *smpPar
	if s := *l3Slices; s < 0 || (s > 1 && s&(s-1) != 0) {
		fmt.Fprintf(os.Stderr, "experiments: -l3-slices must be a power of two, got %d\n", s)
		os.Exit(2)
	}
	spec.L3Slices = *l3Slices
	spec.Ctx = ctx
	if *cacheDir != "" {
		disk, err := resultcache.NewDisk(*cacheDir)
		if err != nil {
			fatal(err)
		}
		spec.Cache = resultcache.New(resultcache.NewMemory(64<<20), disk)
	}

	all := map[string]func() string{
		"tableI":    func() string { return experiments.TableI(spec).Render() },
		"figure1":   func() string { return experiments.Figure1(spec).Render() },
		"figure2":   func() string { return experiments.Figure2(spec).Render() },
		"figure3":   func() string { return experiments.Figure3(spec).Render() },
		"figure4":   func() string { return experiments.Figure4(spec).Render() },
		"figure5":   func() string { return experiments.Figure5(spec).Render() },
		"overhead":  func() string { return experiments.Overhead(spec, 3).Render() },
		"wrongpath": func() string { return experiments.WrongPath(spec).Render() },
		"ablation":  func() string { return experiments.Ablation(spec).Render() },
	}
	order := []string{"tableI", "figure1", "figure2", "figure3", "figure4", "figure5", "overhead", "wrongpath", "ablation"}
	canonical := make(map[string]int, len(order))
	for i, name := range order {
		canonical[name] = i
	}

	names := order
	if *run != "all" {
		if _, ok := all[*run]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s)", *run, strings.Join(order, ", ")))
		}
		names = []string{*run}
	}

	var ckpt *runner.Checkpoint
	if *ckptPath != "" {
		var err error
		ckpt, err = runner.OpenCheckpoint(*ckptPath, *resume)
		if err != nil {
			fatal(err)
		}
		defer ckpt.Close()
	}

	// Experiments run sequentially through the shared supervisor (each one
	// parallelizes its simulations internally via spec.Parallelism); the
	// timed report carries per-experiment wall time for -benchjson, and a
	// panicking experiment becomes a JobError instead of a crash.
	outputs := make([]string, len(names))
	completed := make([]bool, len(names))
	report := runner.RunTimedOpts(ctx, runner.Options{Workers: 1}, len(names),
		func(jctx context.Context, i int) (string, uint64, error) {
			name := names[i]
			if ckpt != nil {
				// Checkpoints are keyed by experiment name (stable across
				// -run filters that renumber the job list).
				if e, ok := ckpt.LookupLabel(name); ok {
					if err := json.Unmarshal(e.Payload, &outputs[i]); err != nil {
						return name, 0, fmt.Errorf("corrupt checkpoint payload (delete %s or rerun without -resume): %w", *ckptPath, err)
					}
					completed[i] = true
					return name, 0, nil
				}
			}
			outputs[i] = all[name]()
			if jctx.Err() != nil {
				// Canceled mid-experiment: the rendered output covers
				// partial simulations and must not be reported or persisted.
				return name, 0, fmt.Errorf("experiment interrupted: %w", jctx.Err())
			}
			completed[i] = true
			if ckpt != nil {
				if err := ckpt.Record(canonical[name], name, outputs[i]); err != nil {
					fmt.Fprintln(os.Stderr, "experiments:", err)
				}
			}
			return name, 0, nil
		}, nil)

	for i, name := range names {
		if !completed[i] {
			continue
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", name, report.Jobs[i].WallSeconds, outputs[i])
	}
	if *benchJSON != "" {
		out := os.Stderr
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fatal(err)
		}
	}

	var missing int
	for _, done := range completed {
		if !done {
			missing++
		}
	}
	switch {
	case report.Failed():
		for i := range report.Errors {
			fmt.Fprintln(os.Stderr, "experiments:", report.Errors[i].Error())
		}
		os.Exit(1)
	case missing > 0:
		hint := ""
		if ckpt != nil {
			hint = fmt.Sprintf("; rerun with -checkpoint %s -resume to continue", *ckptPath)
		}
		fmt.Fprintf(os.Stderr, "experiments: interrupted with %d of %d experiments missing%s\n",
			missing, len(names), hint)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
