// Command experiments regenerates the paper's tables and figures on the
// simulator: Table I, Figures 1-5, the accounting-overhead claim of §IV and
// the wrong-path accounting scheme study of §III-B.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run tableI     # one experiment: tableI, figure1..figure5,
//	                            # overhead, wrongpath
//	experiments -uops 500000 -warmup 300000 -quick=false
//	experiments -run figure2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"perfstacks/internal/experiments"
	"perfstacks/internal/runner"
)

func main() {
	run := flag.String("run", "all", "experiment: all, tableI, figure1, figure2, figure3, figure4, figure5, overhead, wrongpath, ablation")
	uops := flag.Uint64("uops", 0, "measured uops per simulation (0 = default)")
	warmup := flag.Uint64("warmup", 0, "warm-up uops per simulation (0 = default)")
	quick := flag.Bool("quick", false, "use the reduced test sizing")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "write per-experiment wall-time stats as JSON to this file (- for stderr)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write heap profile: %v\n", err)
			}
		}()
	}

	spec := experiments.DefaultSpec()
	if *quick {
		spec = experiments.QuickSpec()
	}
	if *uops > 0 {
		spec.Uops = *uops
	}
	if *warmup > 0 {
		spec.Warmup = *warmup
	}
	spec.Parallelism = *par

	all := map[string]func() string{
		"tableI":    func() string { return experiments.TableI(spec).Render() },
		"figure1":   func() string { return experiments.Figure1(spec).Render() },
		"figure2":   func() string { return experiments.Figure2(spec).Render() },
		"figure3":   func() string { return experiments.Figure3(spec).Render() },
		"figure4":   func() string { return experiments.Figure4(spec).Render() },
		"figure5":   func() string { return experiments.Figure5(spec).Render() },
		"overhead":  func() string { return experiments.Overhead(spec, 3).Render() },
		"wrongpath": func() string { return experiments.WrongPath(spec).Render() },
		"ablation":  func() string { return experiments.Ablation(spec).Render() },
	}
	order := []string{"tableI", "figure1", "figure2", "figure3", "figure4", "figure5", "overhead", "wrongpath", "ablation"}

	names := order
	if *run != "all" {
		if _, ok := all[*run]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want one of %s)\n",
				*run, strings.Join(order, ", "))
			os.Exit(1)
		}
		names = []string{*run}
	}

	// Experiments run sequentially through the shared scheduler (each one
	// parallelizes its simulations internally via spec.Parallelism); the
	// timed report carries per-experiment wall time for -benchjson.
	outputs := make([]string, len(names))
	report := runner.RunTimed(1, len(names), func(i int) (string, uint64) {
		outputs[i] = all[names[i]]()
		return names[i], 0
	})
	for i, name := range names {
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", name, report.Jobs[i].WallSeconds, outputs[i])
	}
	if *benchJSON != "" {
		out := os.Stderr
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}
