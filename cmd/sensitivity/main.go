// Command sensitivity runs a bottleneck sensitivity analysis: it perturbs
// each tunable machine parameter around a baseline configuration (bounded
// scaling plus the paper's idealized/infinite endpoints), simulates every
// perturbed cell, and ranks the parameters by how much CPI their best
// variant buys. Idealized endpoints are cross-checked against the
// multi-stage CPI stack's predicted bounds.
//
// Repeats are cheap: with -cache, every cell is keyed content-addressed
// and shared with simd, sweep and experiments, so a re-run (or an
// overlapping plan) is mostly cache hits.
//
// Usage:
//
//	sensitivity -machine BDW -workload mcf -uops 300000 -warmup 200000
//	sensitivity -params caches,bpred -variants 0.25,0.5,2,4
//	sensitivity -format csv > scores.csv
//	sensitivity -cells-csv cells.csv -cache ~/.cache/perfstacks
//	sensitivity -list   # show the tunable parameters and exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"perfstacks/internal/config"
	"perfstacks/internal/resultcache"
	"perfstacks/internal/runner"
	"perfstacks/internal/sensitivity"
	"perfstacks/internal/sim"
	"perfstacks/internal/textplot"
	"perfstacks/internal/workload"
)

func main() {
	machine := flag.String("machine", "BDW", "baseline machine configuration (BDW, KNL or SKX)")
	wl := flag.String("workload", "mcf", "SPEC-like workload profile")
	uops := flag.Uint64("uops", 300_000, "measured uops per cell")
	warm := flag.Uint64("warmup", 200_000, "warm-up uops per cell")
	params := flag.String("params", "", "comma-separated parameter or group names (empty = all)")
	variants := flag.String("variants", "", "comma-separated scale factors (empty = 0.5,2)")
	noEndpoints := flag.Bool("no-endpoints", false, "skip the idealized/infinite endpoint cells")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (shared with simd, sweep and experiments)")
	format := flag.String("format", "text", "output format: text, json or csv (ranked scores)")
	top := flag.Int("top", 0, "truncate the text ranking to the top N parameters (0 = all)")
	cellsCSV := flag.String("cells-csv", "", "also write every cell measurement as CSV to this file")
	progress := flag.Bool("progress", false, "report each completed cell on stderr")
	list := flag.Bool("list", false, "list the tunable parameters and exit")
	flag.Parse()

	if *list {
		tbl := textplot.NewTable("param", "group", "description")
		for _, p := range sensitivity.Parameters() {
			tbl.Rowf(p.Name, p.Group, p.Doc)
		}
		fmt.Print(tbl.String())
		return
	}

	m, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	prof, ok := workload.SPECProfile(*wl)
	if !ok {
		fatal(fmt.Errorf("unknown workload profile %q", *wl))
	}
	po := sensitivity.PlanOptions{NoEndpoints: *noEndpoints}
	if *params != "" {
		po.Params = splitTrim(*params)
	}
	for _, v := range splitTrim(*variants) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			fatal(fmt.Errorf("bad variant %q: %v", v, err))
		}
		po.Variants = append(po.Variants, f)
	}
	plan, err := sensitivity.NewPlan(m, prof, *warm+*uops, sim.Options{WarmupUops: *warm}, po)
	if err != nil {
		fatal(err)
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		disk, err := resultcache.NewDisk(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache = resultcache.New(resultcache.NewMemory(64<<20), disk)
	}

	// SIGINT/SIGTERM cancel the fan-out cooperatively: in-flight cells stop
	// at their next poll and the plan reports cancellation instead of a
	// partial (hence untrustworthy) ranking. Cells already simulated are in
	// the cache, so a rerun picks up where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pool := runner.NewPool(runner.PoolOptions{Workers: *par})
	defer pool.Close()
	orch := &sensitivity.Orchestrator{
		Run:         sensitivity.LocalRunner(pool, cache),
		Concurrency: *par,
	}
	if *progress {
		orch.OnCell = func(p sensitivity.Progress) {
			label := p.Cell.Variant
			if p.Cell.Param != "" {
				label = p.Cell.Param + "/" + p.Cell.Variant
			}
			fmt.Fprintf(os.Stderr, "sensitivity: [%d/%d] %-28s CPI %.4f (%s)\n",
				p.Done, p.Total, label, p.CPI, p.Source)
		}
	}
	fmt.Fprintf(os.Stderr, "sensitivity: %d cells (%s on %s, %d+%d uops each)\n",
		len(plan.Cells), prof.Name, m.Name, *warm, *uops)
	rep, err := orch.Execute(ctx, plan)
	if err != nil {
		fatal(err)
	}

	if *cellsCSV != "" {
		f, err := os.Create(*cellsCSV)
		if err != nil {
			fatal(err)
		}
		werr := rep.WriteCellsCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
	}

	switch *format {
	case "text":
		fmt.Print(rep.RenderText(*top))
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case "csv":
		if err := rep.WriteScoresCSV(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (want text, json or csv)", *format))
	}
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sensitivity:", err)
	os.Exit(1)
}
