// Command flopsstack simulates a DeepBench-like kernel on a machine
// configuration and prints its FLOPS stack next to its issue-stage CPI stack
// (normalized), the comparison at the heart of the paper's §V-B.
//
// Usage:
//
//	flopsstack -machine KNL -kernel sgemm -config train-2048x128x2048 [-uops 200000]
//	flopsstack -machine SKX -kernel conv -phase fwd -config 54x54x64x8k64
//	flopsstack -list
package main

import (
	"flag"
	"fmt"
	"os"

	"perfstacks/internal/config"
	"perfstacks/internal/core"
	"perfstacks/internal/experiments"
	"perfstacks/internal/sim"
	"perfstacks/internal/textplot"
	"perfstacks/internal/trace"
	"perfstacks/internal/workload"
)

func main() {
	machine := flag.String("machine", "KNL", "machine configuration: BDW, KNL or SKX")
	kernel := flag.String("kernel", "sgemm", "kernel: sgemm or conv")
	cfgName := flag.String("config", "train-2048x128x2048", "problem configuration name")
	phase := flag.String("phase", "fwd", "conv phase: fwd, bwd_f or bwd_d")
	uops := flag.Uint64("uops", 200_000, "uops to simulate")
	warm := flag.Uint64("warmup", 50_000, "warm-up uops before measuring")
	list := flag.Bool("list", false, "list kernel configuration names and exit")
	flag.Parse()

	if *list {
		fmt.Println("# sgemm (train)")
		for _, c := range workload.GemmTrain() {
			fmt.Println(c.Name)
		}
		fmt.Println("# sgemm (inference)")
		for _, c := range workload.GemmInference() {
			fmt.Println(c.Name)
		}
		fmt.Println("# conv (training; phases fwd, bwd_f, bwd_d)")
		for _, c := range workload.ConvTrain() {
			fmt.Println(c.Name)
		}
		return
	}

	m, err := config.ByName(*machine)
	if err != nil {
		fatal(err)
	}
	style := workload.StyleSKX
	if m.Name == "KNL" {
		style = workload.StyleKNL
	}

	var tr trace.Reader
	switch *kernel {
	case "sgemm":
		cfg, ok := findGemm(*cfgName)
		if !ok {
			fatal(fmt.Errorf("unknown sgemm config %q (use -list)", *cfgName))
		}
		tr = workload.NewGemm(style, cfg, m.Core.VectorLanes, 1, 0)
	case "conv":
		cfg, ok := findConv(*cfgName)
		if !ok {
			fatal(fmt.Errorf("unknown conv config %q (use -list)", *cfgName))
		}
		ph, ok := parsePhase(*phase)
		if !ok {
			fatal(fmt.Errorf("unknown conv phase %q", *phase))
		}
		tr = workload.NewConv(style, cfg, ph, m.Core.VectorLanes, 1, 0)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}

	opts := sim.Options{CPI: true, FLOPS: true, WarmupUops: *warm}
	res := sim.Run(m, trace.NewLimit(tr, *uops+*warm), opts)
	if res.Err != nil {
		// Partial stacks look plausible; refuse to print them as a result.
		fatal(res.Err)
	}

	issue := res.Stacks.Stack(core.StageIssue)
	fmt.Printf("%s %s on %s (%s style): CPI %.3f, IPC %.2f\n\n",
		*kernel, *cfgName, m.Name, style, issue.TotalCPI(), issue.IPC())
	fmt.Println("issue-stage CPI stack (normalized) vs FLOPS stack (normalized):")
	tbl := textplot.NewTable("CPI component", "frac", "|", "FLOPS component", "frac")
	cpiComps := core.Components()
	flopsComps := core.FLOPSComponents()
	n := len(cpiComps)
	if len(flopsComps) > n {
		n = len(flopsComps)
	}
	for i := 0; i < n; i++ {
		var c1, v1, c2, v2 string
		if i < len(cpiComps) {
			c1 = cpiComps[i].String()
			v1 = fmt.Sprintf("%.3f", issue.Normalized(cpiComps[i]))
		}
		if i < len(flopsComps) {
			c2 = flopsComps[i].String()
			v2 = fmt.Sprintf("%.3f", res.FLOPS.Normalized(flopsComps[i]))
		}
		tbl.Row(c1, v1, "|", c2, v2)
	}
	fmt.Print(tbl.String())
	fmt.Println()
	fmt.Print(experiments.RenderFLOPSStack(&res.FLOPS, m.FreqGHz))
}

func findGemm(name string) (workload.GemmConfig, bool) {
	for _, c := range append(workload.GemmTrain(), workload.GemmInference()...) {
		if c.Name == name {
			return c, true
		}
	}
	return workload.GemmConfig{}, false
}

func findConv(name string) (workload.ConvConfig, bool) {
	for _, c := range workload.ConvTrain() {
		if c.Name == name {
			return c, true
		}
	}
	return workload.ConvConfig{}, false
}

func parsePhase(s string) (workload.ConvPhase, bool) {
	for _, p := range workload.ConvPhases() {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flopsstack:", err)
	os.Exit(1)
}
