// Command simlint is the repo's invariant multichecker. It bundles the
// seven analyzers of internal/analyzers (enumexhaustive, repeataware,
// batchingest, determinism, acctencapsulation, errcheckerr, handlerctx)
// behind the two driver modes of internal/analysis:
//
//	simlint ./...                           standalone, over go list patterns
//	go vet -vettool=$(pwd)/simlint ./...    as a vet tool (analyzes tests too)
//
// Exit status: 0 clean, 1 driver error, 2 findings. Findings are suppressed
// by a `//simlint:partial <reason>` annotation on the offending line or the
// line above it; see DESIGN.md §8 for the invariant catalogue.
package main

import (
	"perfstacks/internal/analysis"
	"perfstacks/internal/analyzers"
)

func main() {
	analysis.Main("simlint", analyzers.All()...)
}
