// Command simlint is the repo's invariant multichecker. It bundles the
// eleven analyzers of internal/analyzers (enumexhaustive, repeataware,
// batchingest, determinism, acctencapsulation, errcheckerr, handlerctx,
// smpshared, hotalloc, atomicmix, staleannot) behind the two driver modes
// of internal/analysis:
//
//	simlint ./...                           standalone, over go list patterns
//	simlint -json ./...                     sorted JSON findings array
//	simlint -sarif ./...                    SARIF 2.1.0 log (CI artifact)
//	go vet -vettool=$(pwd)/simlint ./...    as a vet tool (analyzes tests too)
//
// Machine-readable output is stably ordered (file, line, column, analyzer,
// message). Exit status: 0 clean, 1 driver or analysis error (dominates),
// 2 findings. Findings are suppressed by a `//simlint:partial <reason>`
// annotation on the offending line or the line above it — the staleannot
// pass flags any suppression that stops earning its keep. Hot-path
// functions are marked `//simlint:hotpath`; see DESIGN.md §8 for the
// invariant catalogue and §13 for the flow-sensitive tier.
package main

import (
	"perfstacks/internal/analysis"
	"perfstacks/internal/analyzers"
)

func main() {
	analysis.Main("simlint", analyzers.All()...)
}
