// Command simd serves stack analysis over HTTP: simulation requests are
// answered from a two-tier content-addressed result cache, deduplicated in
// flight, and load-shed when the bounded simulation queue is full.
//
// Usage:
//
//	simd -addr :8080 -cache /var/cache/simd -workers 8 [-traces DIR]
//
// Endpoints:
//
//	POST /v1/simulate   run (or fetch) a simulation; see internal/service
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text metrics
//	GET  /debug/pprof/  runtime profiles
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight requests get -drain to finish, then running simulations are
// canceled cooperatively.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perfstacks/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (empty = memory tier only)")
	memCache := flag.Int64("cachemem", 64<<20, "in-memory result cache budget in bytes")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond running jobs (0 = one per worker)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-simulation timeout (0 = unbounded)")
	traces := flag.String("traces", "", "directory served for trace_path requests (empty = generator workloads only)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget before in-flight requests are dropped")
	flag.Parse()

	logger := log.New(os.Stderr, "simd: ", log.LstdFlags)
	if err := run(*addr, service.Config{
		CacheDir:      *cacheDir,
		MemCacheBytes: *memCache,
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *timeout,
		TraceDir:      *traces,
		Log:           logger,
	}, *drain, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(addr string, cfg service.Config, drain time.Duration, logger *log.Logger) error {
	// base governs the simulations; canceling it on shutdown makes running
	// producers stop cooperatively instead of holding the drain hostage.
	base, stopSims := context.WithCancel(context.Background())
	defer stopSims()

	srv, err := service.New(base, cfg)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache %q, traces %q)", addr, cfg.CacheDir, cfg.TraceDir)
		serveErr <- hs.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	logger.Printf("shutting down: draining for up to %s", drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	// Whatever is still simulating now has no client worth waiting for.
	stopSims()
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("drained")
	return nil
}
