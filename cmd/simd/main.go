// Command simd serves stack analysis over HTTP: simulation requests are
// answered from a two-tier content-addressed result cache, deduplicated in
// flight, and load-shed when the bounded simulation queue is full.
//
// Usage:
//
//	simd -addr :8080 -cache /var/cache/simd -workers 8 [-traces DIR]
//	simd -addr :8080 -self http://a:8080 -peers http://a:8080,http://b:8080 \
//	     -peer-token SECRET
//
// With -peers, the node joins a consistent-hash ring over the result-cache
// key space: each key has an owner peer, local misses try the owner (with
// per-peer circuit breakers, bounded retries and a hedged read to the next
// replica) before simulating, and locally simulated results are offered to
// their owner. Every node must be started with the same -peers set and the
// same -peer-token (or $SIMD_PEER_TOKEN), the shared secret that gates the
// cluster-internal endpoints. All peer failures degrade down the ladder
// (peer → local cache → local simulation); a fully partitioned node
// behaves exactly like a single-node simd.
//
// Endpoints:
//
//	POST /v1/simulate          run (or fetch) a simulation; see internal/service
//	POST /v1/sensitivity       fan out a perturbation plan to a ranked
//	                           sensitivity report (?stream=1 for NDJSON
//	                           progress); see internal/sensitivity
//	GET  /v1/peer/result/{key} ring members only: serve a cached entry to a peer
//	PUT  /v1/peer/result/{key} ring members only: accept a verified fill
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text metrics
//	GET  /debug/pprof/         runtime profiles
//
// The /v1/peer routes are registered only when -peers is set, and require
// the ring's bearer token; a single-node simd exposes no peer surface.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight requests get -drain to finish, then running simulations are
// canceled cooperatively.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perfstacks/internal/cluster"
	"perfstacks/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "on-disk result cache directory (empty = memory tier only)")
	memCache := flag.Int64("cachemem", 64<<20, "in-memory result cache budget in bytes")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond running jobs (0 = one per worker)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-simulation timeout (0 = unbounded)")
	traces := flag.String("traces", "", "directory served for trace_path requests (empty = generator workloads only)")
	plans := flag.Int("plans", 0, "concurrent sensitivity plans admitted (0 = 2); further plans are shed with 429")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget before in-flight requests are dropped")
	peers := flag.String("peers", "", "comma-separated base URLs of every ring member including this node (empty = single-node)")
	self := flag.String("self", "", "this node's own base URL within -peers (required with -peers)")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "per-attempt deadline for one peer exchange")
	peerRetries := flag.Int("peer-retries", 1, "retries per peer fetch after the first attempt (0 disables retries)")
	peerToken := flag.String("peer-token", "", "shared secret gating the cluster-internal /v1/peer endpoints; required with -peers (falls back to $SIMD_PEER_TOKEN)")
	peerHedge := flag.Duration("peer-hedge", 50*time.Millisecond, "delay before a hedged read to the next replica (<0 disables)")
	breakerFails := flag.Int("peer-breaker-failures", 3, "consecutive failures that open a peer's circuit breaker")
	breakerWindow := flag.Duration("peer-breaker-window", 5*time.Second, "how long an open breaker fails fast before probing")
	flag.Parse()

	logger := log.New(os.Stderr, "simd: ", log.LstdFlags)
	cfg := service.Config{
		CacheDir:      *cacheDir,
		MemCacheBytes: *memCache,
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *timeout,
		MaxPlans:      *plans,
		TraceDir:      *traces,
		Log:           logger,
	}
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimRight(strings.TrimSpace(list[i]), "/")
		}
		token := *peerToken
		if token == "" {
			token = os.Getenv("SIMD_PEER_TOKEN")
		}
		if token == "" {
			logger.Fatal("-peers requires -peer-token (or $SIMD_PEER_TOKEN): the peer fill endpoints must not be open to arbitrary clients")
		}
		retries := *peerRetries
		if retries == 0 {
			// The flag default is 1, so an explicit 0 means "no retries";
			// cluster.Config spells that as its negative sentinel (0 there
			// means "unset → default").
			retries = -1
		}
		cfg.Cluster = &cluster.Config{
			Peers:          list,
			Self:           strings.TrimRight(strings.TrimSpace(*self), "/"),
			AuthToken:      token,
			AttemptTimeout: *peerTimeout,
			Retries:        retries,
			HedgeDelay:     *peerHedge,
			Breaker: cluster.BreakerConfig{
				FailureThreshold: *breakerFails,
				OpenWindow:       *breakerWindow,
			},
		}
	}
	if err := run(*addr, cfg, *drain, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(addr string, cfg service.Config, drain time.Duration, logger *log.Logger) error {
	// base governs the simulations; canceling it on shutdown makes running
	// producers stop cooperatively instead of holding the drain hostage.
	base, stopSims := context.WithCancel(context.Background())
	defer stopSims()

	srv, err := service.New(base, cfg)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (cache %q, traces %q)", addr, cfg.CacheDir, cfg.TraceDir)
		serveErr <- hs.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	logger.Printf("shutting down: draining for up to %s", drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = hs.Shutdown(shutdownCtx)
	// Whatever is still simulating now has no client worth waiting for.
	stopSims()
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("drained")
	return nil
}
